"""CLAIM-UPDATE — amortized constant update time.

The paper: "we compute the statistics node but do not aggregate the
statistics for nodes further in the tree.  This leads to an amortized
constant update time."  Two measurements back this up here:

* update throughput over successive windows of one long stream — it must
  not degrade as the tree fills and compaction kicks in (constant amortized
  cost), and
* update throughput as a function of the node budget — a larger tree must
  not make updates slower (the cost is per-update work, not per-node).

A third table compares per-update cost against the hierarchical-heavy-hitter
baselines, which pay O(levels) per packet.
"""

import os
import statistics
import time

import pytest

from workloads import print_header
from repro.analysis import render_table
from repro.baselines import FullUpdateHHH, RandomizedHHH, SpaceSavingSummary
from repro.core import Flowtree, FlowtreeConfig, ParallelShardedFlowtree, ShardedFlowtree
from repro.features.schema import SCHEMA_4F
from repro.traces import CaidaLikeTraceGenerator


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _updates_per_second(tree, packets) -> float:
    start = time.perf_counter()
    tree.add_records(packets)
    elapsed = time.perf_counter() - start
    return len(packets) / elapsed if elapsed > 0 else float("inf")


@pytest.mark.benchmark(group="update-throughput")
def test_claim_amortized_constant_updates_over_stream(benchmark):
    """Throughput per window stays flat as the stream progresses."""
    generator = CaidaLikeTraceGenerator(seed=99, flow_population=60_000)
    windows = 6
    window_size = 25_000
    packets = list(generator.packets(windows * window_size))
    tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=3_000))

    def run():
        rates = []
        for index in range(windows):
            window = packets[index * window_size:(index + 1) * window_size]
            rates.append(_updates_per_second(tree, window))
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("CLAIM-UPDATE (a)", "update throughput per stream window (constant amortized cost)")
    print(render_table([
        {"window": index, "stream_position": (index + 1) * window_size,
         "updates_per_second": int(rate), "nodes": "<= 3000"}
        for index, rate in enumerate(rates)
    ]))
    # Later windows must not be dramatically slower than the early ones.
    steady = rates[-1]
    warmup = rates[0]
    assert steady > warmup * 0.4, (
        f"update rate degraded from {warmup:.0f}/s to {steady:.0f}/s over the stream"
    )
    # Windows after the tree is warm should be roughly flat among themselves.
    later = rates[2:]
    assert max(later) / min(later) < 3.0


@pytest.mark.benchmark(group="update-throughput")
def test_claim_update_cost_independent_of_budget(benchmark):
    """Per-update cost does not grow with the node budget."""
    generator = CaidaLikeTraceGenerator(seed=100, flow_population=40_000)
    packets = list(generator.packets(60_000))

    def run():
        rows = []
        for budget in (1_000, 4_000, 16_000):
            tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget))
            rate = _updates_per_second(tree, packets)
            rows.append({"node_budget": budget, "updates_per_second": int(rate),
                         "final_nodes": len(tree)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("CLAIM-UPDATE (b)", "update throughput vs node budget")
    print(render_table(rows))
    rates = [row["updates_per_second"] for row in rows]
    # The paper's claim is directional: a larger tree must not make updates
    # slower.  (Larger budgets getting *faster* is fine — the tree compacts
    # less often — so the bound is one-sided.)
    assert rates[-1] > rates[0] * 0.5, (
        f"16x larger budget degraded updates from {rates[0]}/s to {rates[-1]}/s"
    )
    # And mid-sized budgets must not be pathological outliers.
    assert min(rates) > max(rates[0], 1) * 0.4


@pytest.mark.benchmark(group="update-throughput")
def test_batched_ingestion_speedup(benchmark):
    """CLAIM-BATCH: batched ingestion sustains >= 2x the per-record rate.

    The workload keeps the paper's regime — the distinct-flow working set
    fits the node budget (40 k nodes for 6 M packets) — scaled down: ~4 k
    flows, 120 k packets, an 8 k-node budget.  ``add_batch`` pre-aggregates
    duplicates per batch, builds one key per distinct flow and amortizes
    the compaction check, which is where the speedup comes from.

    Every path is measured three times and the claim ratio uses the
    medians; the ratio is recorded as ``rel_batch_speedup`` in
    ``extra_info``, which is what CI's benchmark-regression gate compares
    across runs (ratios of same-process measurements are robust to runner
    speed, absolute rates are not).
    """
    generator = CaidaLikeTraceGenerator(seed=102, flow_population=4_000)
    packets = list(generator.packets(120_000))
    budget = 8_000

    def run():
        loop_rates, batch_rates, sharded_rates = [], [], []
        for _ in range(3):
            loop_tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget))
            start = time.perf_counter()
            loop_tree.add_records(packets)
            loop_rates.append(len(packets) / (time.perf_counter() - start))

            batch_tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget))
            start = time.perf_counter()
            batch_tree.add_batch(packets)
            batch_rates.append(len(packets) / (time.perf_counter() - start))

            sharded = ShardedFlowtree(
                SCHEMA_4F, FlowtreeConfig(max_nodes=budget), num_shards=4
            )
            start = time.perf_counter()
            sharded.add_batch(packets)
            sharded_rates.append(len(packets) / (time.perf_counter() - start))
        return (
            loop_tree, batch_tree, sharded,
            statistics.median(loop_rates),
            statistics.median(batch_rates),
            statistics.median(sharded_rates),
        )

    loop_tree, batch_tree, sharded, loop_rate, batch_rate, sharded_rate = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    benchmark.extra_info["rel_batch_speedup"] = round(batch_rate / loop_rate, 3)
    benchmark.extra_info["rel_sharded_speedup"] = round(sharded_rate / loop_rate, 3)
    print_header("CLAIM-BATCH",
                 "batched + sharded ingestion vs the per-record loop (median of 3)")
    print(render_table([
        {"ingestion": "per-record add_records", "updates_per_second": int(loop_rate),
         "speedup": "1.00x"},
        {"ingestion": "batched add_batch", "updates_per_second": int(batch_rate),
         "speedup": f"{batch_rate / loop_rate:.2f}x"},
        {"ingestion": "sharded (4) add_batch", "updates_per_second": int(sharded_rate),
         "speedup": f"{sharded_rate / loop_rate:.2f}x"},
    ]))
    # All three paths account for every packet.
    assert batch_tree.total_counters() == loop_tree.total_counters()
    assert sharded.total_counters() == loop_tree.total_counters()
    # The tentpole claim: batching buys at least 2x ingest throughput.
    assert batch_rate >= 2.0 * loop_rate, (
        f"batched ingestion only reached {batch_rate / loop_rate:.2f}x "
        f"({int(batch_rate)}/s vs {int(loop_rate)}/s)"
    )
    # Sharding adds partitioning overhead but must not lose the batching win.
    assert sharded_rate >= loop_rate


@pytest.mark.benchmark(group="update-throughput")
def test_rebuild_compaction_speedup(benchmark):
    """CLAIM-COMPACT: bulk rebuild >= 4x incremental ingest at budget = flows/10.

    The budget ≪ distinct-flows regime is the paper's headline use case
    (summarize far more flows than the tree can hold) and the one where
    incremental victim rounds degenerate: every batch materializes the
    working set as tree nodes and then dismantles most of it again.  The
    rebuild compactor folds the kept nodes plus the batch bottom-up in one
    token-space pass instead (``compaction="rebuild"``), and ``"auto"``
    must select it by itself from the batch overshoot.

    Median-of-3 per mode; the incremental-vs-rebuild ratio is recorded as
    ``rel_compact_speedup`` for CI's gating regression check.
    """
    generator = CaidaLikeTraceGenerator(seed=104, flow_population=400_000)
    packets = list(generator.packets(80_000))
    distinct = len({SCHEMA_4F.signature_of(p) for p in packets})
    budget = max(16, distinct // 10)

    def ingest(mode):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget, compaction=mode))
        start = time.perf_counter()
        tree.add_batch(packets)
        return tree, len(packets) / (time.perf_counter() - start)

    def run():
        results = {}
        for mode in ("incremental", "rebuild", "auto"):
            rates = []
            for _ in range(3):
                tree, rate = ingest(mode)
                rates.append(rate)
            results[mode] = (tree, statistics.median(rates))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    incremental_rate = results["incremental"][1]
    rebuild_rate = results["rebuild"][1]
    auto_rate = results["auto"][1]
    benchmark.extra_info["rel_compact_speedup"] = round(rebuild_rate / incremental_rate, 3)
    benchmark.extra_info["rel_compact_auto_speedup"] = round(auto_rate / incremental_rate, 3)
    benchmark.extra_info["distinct_flows"] = distinct
    benchmark.extra_info["node_budget"] = budget
    print_header(
        "CLAIM-COMPACT",
        f"compaction strategies at budget = distinct/10 "
        f"({distinct} flows, {budget} nodes; median of 3)",
    )
    print(render_table([
        {"compaction": mode, "updates_per_second": int(results[mode][1]),
         "speedup": f"{results[mode][1] / incremental_rate:.2f}x",
         "final_nodes": len(results[mode][0]),
         "rebuilds": results[mode][0].stats.rebuilds}
        for mode in ("incremental", "rebuild", "auto")
    ]))
    # Every strategy conserves every counter.
    reference = results["incremental"][0].total_counters()
    assert results["rebuild"][0].total_counters() == reference
    assert results["auto"][0].total_counters() == reference
    # auto must have dispatched to the rebuild strategy in this regime.
    assert results["auto"][0].stats.rebuilds > 0
    # The tentpole claim: >= 4x batched-ingest throughput over incremental.
    assert rebuild_rate >= 4.0 * incremental_rate, (
        f"bulk rebuild only reached {rebuild_rate / incremental_rate:.2f}x "
        f"({int(rebuild_rate)}/s vs {int(incremental_rate)}/s)"
    )
    assert auto_rate >= 2.0 * incremental_rate


@pytest.mark.benchmark(group="update-throughput")
def test_parallel_sharded_ingestion_speedup(benchmark):
    """CLAIM-PARALLEL: process-parallel sharded ingestion on multi-core hosts.

    Same paper-like regime as CLAIM-BATCH (working set fits the budget).
    Measured end to end — partition + ship + fold + join on the merged
    summary — so pickling/pipe overhead is charged against the win.  Rates
    are medians of three runs (the benchmarks job gates, so one noisy
    shared-runner measurement must not block a merge).  The ≥2x
    four-worker-vs-one-worker claim is only asserted when the host
    actually exposes ≥4 CPUs; on smaller hosts the table still records the
    measured rates (process parallelism cannot beat the in-process path on
    one core, which the README's "when does it pay" section spells out).
    """
    generator = CaidaLikeTraceGenerator(seed=103, flow_population=4_000)
    packets = list(generator.packets(120_000))
    budget = 8_000

    def run_parallel(num_workers):
        with ParallelShardedFlowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=budget), num_workers=num_workers
        ) as parallel:
            start = time.perf_counter()
            parallel.add_batch(packets)
            tree = parallel.merged_tree()   # joins the outstanding folds
            elapsed = time.perf_counter() - start
        return tree, len(packets) / elapsed

    def run():
        inproc_rates, one_rates, four_rates = [], [], []
        for _ in range(3):
            inproc = ShardedFlowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget), num_shards=4)
            start = time.perf_counter()
            inproc.add_batch(packets)
            inproc_tree = inproc.merged_tree()
            inproc_rates.append(len(packets) / (time.perf_counter() - start))
            one_tree, one_rate = run_parallel(1)
            one_rates.append(one_rate)
            four_tree, four_rate = run_parallel(4)
            four_rates.append(four_rate)
        return (
            inproc_tree, one_tree, four_tree,
            statistics.median(inproc_rates),
            statistics.median(one_rates),
            statistics.median(four_rates),
        )

    inproc_tree, one_tree, four_tree, inproc_rate, one_rate, four_rate = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    # Annotation only (no rel_ prefix): the ratio depends on the host's
    # core count, so it must not participate in the cross-run gate.
    benchmark.extra_info["parallel_speedup_vs_1_worker"] = round(four_rate / one_rate, 3)
    cpus = _available_cpus()
    print_header(
        "CLAIM-PARALLEL",
        f"process-parallel sharded ingestion ({cpus} CPUs available)",
    )
    print(render_table([
        {"ingestion": "in-process sharded (4)", "updates_per_second": int(inproc_rate),
         "speedup_vs_1_worker": f"{inproc_rate / one_rate:.2f}x"},
        {"ingestion": "parallel, 1 worker", "updates_per_second": int(one_rate),
         "speedup_vs_1_worker": "1.00x"},
        {"ingestion": "parallel, 4 workers", "updates_per_second": int(four_rate),
         "speedup_vs_1_worker": f"{four_rate / one_rate:.2f}x"},
    ]))
    # Whatever the core count, all paths must account for every packet and
    # the 4-worker result must be byte-equal to the in-process sharded one.
    assert one_tree.total_counters() == inproc_tree.total_counters()
    assert four_tree.total_counters() == inproc_tree.total_counters()
    from repro.core import to_bytes
    assert to_bytes(four_tree) == to_bytes(inproc_tree)
    if cpus >= 4:
        assert four_rate >= 2.0 * one_rate, (
            f"4 workers only reached {four_rate / one_rate:.2f}x over 1 worker "
            f"({int(four_rate)}/s vs {int(one_rate)}/s) on a {cpus}-CPU host"
        )
    else:
        print(f"NOTE: only {cpus} CPU(s) available; >=2x speedup claim not asserted")


@pytest.mark.benchmark(group="update-throughput")
def test_parallel_rebuild_fold_equivalence(benchmark):
    """CLAIM-COMPACT extension: the per-shard parallel fold changes nothing.

    ``ShardedFlowtree.compact_parallel`` ships each over-budget shard's
    flattened token-space levels to a worker process and runs the exact
    serial fold there, so its gated claim is **byte-identity** with the
    serial ``compact()`` — asserted unconditionally, whatever the core
    count.  The wall-clock ratio is recorded as an annotation only (no
    ``rel_`` prefix: on a single-CPU runner worker processes cannot beat
    the in-process fold, exactly like CLAIM-PARALLEL's ingestion ratio).
    """
    generator = CaidaLikeTraceGenerator(seed=107, flow_population=200_000)
    packets = list(generator.packets(60_000))
    config = FlowtreeConfig(max_nodes=2_000, compaction="rebuild")

    def grown():
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=4)
        sharded.add_batch(packets)
        # Overfill past the per-shard target so compact() has real work.
        sharded.add_batch(packets[: len(packets) // 2])
        return sharded

    def run():
        serial_times, parallel_times = [], []
        for _ in range(3):
            serial = grown()
            start = time.perf_counter()
            serial_removed = serial.compact()
            serial_times.append(time.perf_counter() - start)
            parallel = grown()
            start = time.perf_counter()
            parallel_removed = parallel.compact_parallel(processes=4)
            parallel_times.append(time.perf_counter() - start)
        return (
            serial, parallel, serial_removed, parallel_removed,
            statistics.median(serial_times), statistics.median(parallel_times),
        )

    serial, parallel, serial_removed, parallel_removed, serial_time, parallel_time = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    cpus = _available_cpus()
    benchmark.extra_info["parallel_fold_speedup_vs_serial"] = round(
        serial_time / parallel_time, 3
    )
    print_header(
        "CLAIM-COMPACT (parallel fold)",
        f"serial compact() vs compact_parallel() on 4 shards ({cpus} CPUs; median of 3)",
    )
    print(render_table([
        {"fold": "serial compact()", "fold_ms": round(serial_time * 1e3, 1),
         "entries_folded": serial_removed},
        {"fold": "compact_parallel(4)", "fold_ms": round(parallel_time * 1e3, 1),
         "entries_folded": parallel_removed},
    ]))
    # The gated claim: the parallel fold is byte-identical to the serial one.
    assert parallel_removed == serial_removed
    from repro.core import to_bytes
    assert [to_bytes(shard) for shard in serial._shards] == [
        to_bytes(shard) for shard in parallel._shards
    ]


@pytest.mark.benchmark(group="update-throughput")
def test_update_cost_vs_hhh_baselines(benchmark):
    """Flowtree touches one node per update; full HHH pays for every level."""
    generator = CaidaLikeTraceGenerator(seed=101, flow_population=20_000)
    packets = list(generator.packets(20_000))

    def run():
        rows = []
        contenders = [
            ("flowtree", Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=3_000))),
            ("space-saving", SpaceSavingSummary(SCHEMA_4F, capacity=3_000)),
            ("rhhh (constant-time HHH)", RandomizedHHH(SCHEMA_4F, counters_per_level=500)),
            ("full-update HHH", FullUpdateHHH(SCHEMA_4F, counters_per_level=500)),
        ]
        for name, summary in contenders:
            start = time.perf_counter()
            summary.add_records(packets)
            elapsed = time.perf_counter() - start
            rows.append({
                "summary": name,
                "updates_per_second": int(len(packets) / elapsed),
                "relative_cost_per_update": None,  # filled below
            })
        baseline = rows[0]["updates_per_second"]
        for row in rows:
            row["relative_cost_per_update"] = round(baseline / row["updates_per_second"], 2)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("CLAIM-UPDATE (c)", "per-update cost vs HHH baselines (higher = slower than Flowtree)")
    print(render_table(rows))
    by_name = {row["summary"]: row["updates_per_second"] for row in rows}
    # The shape the paper argues for: one-node updates beat per-level updates.
    assert by_name["flowtree"] > by_name["full-update HHH"]
