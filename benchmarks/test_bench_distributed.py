"""CLAIM-TRANSFER / FIG1 — distributed transfer cost and the multi-site scenario.

* CLAIM-TRANSFER: "Mergeable flow summaries can reduce transfer and storage
  volume by allowing transfer of only summaries or even difference of
  consecutive summaries" — measured as bytes shipped per strategy (raw
  NetFlow export, full per-bin summaries, diffs of consecutive summaries).
* FIG1: the five-site ISP deployment of the paper's Fig. 1 — per-peer volume
  across all sites in one query, followed by a drill-down into the hottest
  peer, all executed over summaries only.
"""

import time

import pytest

from workloads import print_header
from repro.analysis import comparison_line, format_bytes, render_table
from repro.analysis.storage import transfer_report
from repro.core import Flowtree, FlowtreeConfig
from repro.distributed import Deployment
from repro.features.schema import SCHEMA_2F_SRC_DST
from repro.flows.netflow import raw_export_size
from repro.flows.records import packets_to_flows
from repro.traces import EnterpriseTraceGenerator
from repro.traces.replay import time_bins


@pytest.mark.benchmark(group="distributed")
def test_claim_diff_transfer_reduction(benchmark, caida_workload):
    """CLAIM-TRANSFER: diffs of consecutive summaries vs full summaries vs raw export."""

    def run():
        packets = caida_workload.packets
        duration = packets[-1].timestamp - packets[0].timestamp
        width = duration / 8 + 1e-9
        trees, flows_per_bin = [], []
        for _, bin_packets in time_bins(iter(packets), width=width):
            tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=2_000))
            tree.add_records(bin_packets)
            trees.append(tree)
            flows_per_bin.append(len({p.five_tuple for p in bin_packets}))
        return transfer_report(trees, flows_per_bin)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("CLAIM-TRANSFER", "bytes shipped per transfer strategy (8 bins)")
    print(render_table([
        {"strategy": "raw NetFlow v5 export", "bytes": format_bytes(report.raw_netflow_bytes)},
        {"strategy": "full summary per bin", "bytes": format_bytes(report.full_bytes)},
        {"strategy": "diff of consecutive summaries", "bytes": format_bytes(report.diff_bytes)},
    ]))
    print()
    print(render_table([
        comparison_line("diff vs full-summary savings", f"{report.diff_savings:.1%}",
                        "diffs cheaper"),
        comparison_line("diff vs raw export reduction", f"{report.reduction_vs_raw:.1%}",
                        "large reduction"),
    ]))
    assert report.full_bytes < report.raw_netflow_bytes
    assert report.diff_bytes <= report.full_bytes
    assert report.reduction_vs_raw > 0.5


@pytest.mark.benchmark(group="distributed")
def test_batched_site_replay(benchmark):
    """Site replay through the daemons' batched ingestion path vs per-record.

    The deployment replay is where the paper's many-sites story meets the
    ingest rate: every site daemon now buffers same-bin records and charges
    them through ``Flowtree.add_batch``.  Both paths must account for every
    packet and export the same number of bins; the batched one should not
    be slower.
    """
    sites = ["site-1", "site-2", "site-3"]
    packets_per_site = 30_000
    traffic = {
        site: list(EnterpriseTraceGenerator(
            site_prefix=f"100.{80 + index}.0.0", seed=700 + index,
            customer_count=800, flows_per_customer=12,
        ).packets(packets_per_site))
        for index, site in enumerate(sites)
    }

    def replay(batch_size):
        deployment = Deployment(
            SCHEMA_2F_SRC_DST, sites, bin_width=300.0,
            daemon_config=FlowtreeConfig(max_nodes=4_000), use_diffs=True,
        )
        for site in sites:
            deployment.attach_records(site, traffic[site])
            deployment.site(site).batch_size = batch_size
        start = time.perf_counter()
        consumed = deployment.run(scan_alerts=False)
        elapsed = time.perf_counter() - start
        total = sum(consumed.values())
        bins = sum(deployment.daemon(site).stats.bins_exported for site in sites)
        return total, bins, total / elapsed

    def run():
        per_record = replay(batch_size=0)
        batched = replay(batch_size=8_192)
        return per_record, batched

    (loop_total, loop_bins, loop_rate), (batch_total, batch_bins, batch_rate) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print_header("CLAIM-BATCH-REPLAY", "deployment replay: batched vs per-record daemons")
    print(render_table([
        {"replay": "per-record daemons", "records_per_second": int(loop_rate),
         "bins_exported": loop_bins},
        {"replay": "batched daemons", "records_per_second": int(batch_rate),
         "bins_exported": batch_bins},
    ]))
    assert loop_total == batch_total == packets_per_site * len(sites)
    assert loop_bins == batch_bins
    # Batching must never cost replay throughput.
    assert batch_rate >= loop_rate * 0.9


@pytest.mark.benchmark(group="distributed")
def test_fig1_multisite_query(benchmark):
    """FIG1: five ISP sites, one collector, per-peer volume query and drill-down."""
    sites = ["site-1", "site-2", "site-3", "site-4", "site-5"]
    packets_per_site = 25_000

    def run():
        deployment = Deployment(
            SCHEMA_2F_SRC_DST, sites, bin_width=300.0,
            daemon_config=FlowtreeConfig(max_nodes=4_000), use_diffs=True,
        )
        generators = {}
        for index, site in enumerate(sites):
            generators[site] = EnterpriseTraceGenerator(
                site_prefix=f"100.{64 + index}.0.0", seed=500 + index,
                customer_count=1_000, flows_per_customer=15,
            )
            deployment.attach_records(site, list(generators[site].packets(packets_per_site)))
        deployment.run(scan_alerts=False)
        return deployment, generators[sites[0]].peers

    deployment, peers = benchmark.pedantic(run, rounds=1, iterations=1)
    engine = deployment.query_engine

    print_header("FIG1", "per-peer volume towards all five sites (summaries only)")
    rows = []
    for peer in peers:
        response = engine.volume((f"{peer.prefix}/{peer.prefix_bits}", "*"))
        rows.append({
            "peer": peer.name,
            "prefix": f"{peer.prefix}/{peer.prefix_bits}",
            "configured_share": f"{peer.weight:.0%}",
            "measured_packets": response.total,
            "sites_reporting": len(response.per_site),
        })
    print(render_table(rows))

    total = engine.volume(("*", "*")).total
    shipped = deployment.transfer_bytes()
    raw = raw_export_size(sum(
        len({p.five_tuple for p in []}) for _ in sites
    ) or packets_per_site * len(sites) // 3)
    print()
    print(render_table([
        comparison_line("total packets accounted", total, packets_per_site * len(sites)),
        comparison_line("summary bytes shipped", format_bytes(shipped), "(not reported)"),
    ]))

    # Every packet is accounted for across the five sites.
    assert total == packets_per_site * len(sites)
    # Peer volume ordering matches the configured traffic matrix.
    measured = [row["measured_packets"] for row in rows]
    assert measured == sorted(measured, reverse=True)
    # The heaviest peer carries roughly its configured share (38 %).
    assert measured[0] / total == pytest.approx(peers[0].weight, abs=0.12)
    # Drill-down below the heaviest peer works on the merged view.
    steps = engine.investigate((f"{peers[0].prefix}/{peers[0].prefix_bits}", "*"), feature_index=0)
    assert isinstance(steps, list)
