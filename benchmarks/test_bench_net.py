"""CLAIM-NET — real TCP transport vs the simulated in-memory transport.

The paper's Fig. 1 system ships summaries from site daemons to a central
collector over a network; PR 7 added the real asyncio TCP transport
(:mod:`repro.distributed.net`).  This benchmark pins two things:

* **bounded slowdown** — driving one daemon's multi-bin summary stream
  end-to-end over localhost TCP (frame encode, socket, decode, ack,
  ingest) stays within a bounded factor of handing the same messages to
  the collector through the in-memory transport.  The claim ratio
  ``rel_net_tcp_ratio`` (memory time over tcp time, median of 3
  interleaved runs) feeds CI's cross-run regression gate, and the
  summaries/sec of both paths are reported.
* **byte accounting parity** — the payload bytes the TCP client charges
  per channel equal the simulated transport's accounting exactly (the
  transfer-cost claims are stated over payload bytes), the actual
  bytes-on-wire are reported next to the simulated overhead model, and
  both paths answer the same range-query workload identically.

The comparison is only meaningful between equivalent answers, so the
collector state after both drives must match byte for byte.
"""

import gc
import statistics
import time

import pytest

from workloads import print_header
from repro.analysis import render_table
from repro.core.config import FlowtreeConfig
from repro.core.key import FlowKey
from repro.core.serialization import to_bytes
from repro.distributed import Collector, FlowtreeDaemon, SimulatedTransport
from repro.distributed.net import CollectorServer, SiteClient
from repro.features.schema import SCHEMA_4F
from repro.traces import CaidaLikeTraceGenerator

TARGET_BINS = 12
NODE_BUDGET = 4_000
QUERY_KEYS = 1_000
#: Maximum tolerated slowdown of the localhost TCP path (encode + socket +
#: decode + ack per message) vs the in-memory hand-off.  Measured ~2x on a
#: 1-core container; the margin absorbs loaded CI schedulers.
MAX_SLOWDOWN = 15.0


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, result


def _build_messages():
    """One daemon's multi-bin export stream plus a query-key workload."""
    generator = CaidaLikeTraceGenerator(seed=77, flow_population=120_000)
    packets = list(generator.packets(40_000))
    span = packets[-1].timestamp - packets[0].timestamp
    bin_width = span / TARGET_BINS
    transport = SimulatedTransport()
    daemon = FlowtreeDaemon(
        "edge-1", SCHEMA_4F, transport, collector_name="collector",
        bin_width=bin_width, config=FlowtreeConfig(max_nodes=NODE_BUDGET),
        use_diffs=True,
    )
    daemon.consume_records(packets)
    daemon.flush()
    messages = [message for _, message in transport.receive("collector")]
    keys = list({FlowKey.from_record(SCHEMA_4F, p) for p in packets[:QUERY_KEYS]})
    return messages, keys, bin_width


def _summarize(collector, keys):
    totals, _ = collector.estimate_many(keys, start_bin=1, end_bin=TARGET_BINS - 2)
    merged = collector.merged(start_bin=1, end_bin=TARGET_BINS - 2)
    return totals, to_bytes(merged)


def _drive_memory(messages, keys, bin_width):
    """Send the stream through the simulated transport and query it."""
    transport = SimulatedTransport()
    transport.register("edge-1")
    collector = Collector(SCHEMA_4F, transport, bin_width=bin_width,
                          storage_config=FlowtreeConfig(max_nodes=NODE_BUDGET))

    def work():
        for message in messages:
            transport.send("edge-1", "collector", message)
        collector.poll()
        return _summarize(collector, keys)

    elapsed, answers = _timed(work)
    log = transport.channel_log("edge-1", "collector")
    return elapsed, answers, collector.bytes_received, log


def _drive_tcp(messages, keys, bin_width):
    """Send the stream over localhost TCP (frames, acks) and query it."""
    with CollectorServer().start() as server:
        collector = Collector(SCHEMA_4F, server, bin_width=bin_width,
                              storage_config=FlowtreeConfig(max_nodes=NODE_BUDGET))
        with SiteClient(server.host, server.port, site="edge-1") as client:
            client.register("edge-1")
            client.register("collector")

            def work():
                for message in messages:
                    client.send("edge-1", "collector", message)
                client.drain(timeout=60.0)
                collector.poll()
                return _summarize(collector, keys)

            elapsed, answers = _timed(work)
            log = client.channel_log("edge-1", "collector")
        return elapsed, answers, collector.bytes_received, log


@pytest.mark.benchmark(group="net")
def test_claim_net_tcp_within_bounded_factor(benchmark):
    """CLAIM-NET: localhost TCP end-to-end <= bounded factor of memory, same bytes."""
    messages, keys, bin_width = _build_messages()
    assert len(messages) >= TARGET_BINS

    def run():
        times = {"memory": [], "tcp": []}
        results = {}
        for _ in range(3):
            for kind, drive in (("memory", _drive_memory), ("tcp", _drive_tcp)):
                elapsed, answers, payload_bytes, log = drive(messages, keys, bin_width)
                times[kind].append(elapsed)
                results[kind] = (answers, payload_bytes, log)
        return {kind: statistics.median(values) for kind, values in times.items()}, results

    medians, results = benchmark.pedantic(run, rounds=1, iterations=1)

    mem_answers, mem_payload, mem_log = results["memory"]
    tcp_answers, tcp_payload, tcp_log = results["tcp"]

    # Both paths deliver the same summaries and answer identically.
    assert tcp_answers == mem_answers, "TCP-delivered answers diverged from memory"
    assert tcp_payload == mem_payload, "collector payload accounting diverged"
    # The client's payload accounting matches the simulated transport's.
    assert tcp_log.payload_bytes == mem_log.payload_bytes
    assert tcp_log.messages == mem_log.messages
    assert tcp_log.overhead_bytes > 0  # real frame envelopes, not the model

    rows = []
    for kind, log in (("memory", mem_log), ("tcp", tcp_log)):
        rows.append({
            "transport": kind,
            "end_to_end_ms": round(medians[kind] * 1000, 1),
            "summaries_per_s": round(len(messages) / medians[kind], 1),
            "vs_memory": f"{medians[kind] / medians['memory']:.2f}x",
            "payload_bytes": log.payload_bytes,
            "wire_bytes": log.total_bytes,
        })
    benchmark.extra_info["rel_net_tcp_ratio"] = round(
        medians["memory"] / medians["tcp"], 3
    )
    benchmark.extra_info["tcp_summaries_per_s"] = round(
        len(messages) / medians["tcp"], 1
    )

    print_header(
        "CLAIM-NET",
        f"{len(messages)} summary messages over localhost TCP vs in-memory, "
        f"{len(keys)} range-query keys (median of 3 interleaved runs)",
    )
    print(render_table(rows))

    slowdown = medians["tcp"] / medians["memory"]
    assert slowdown <= MAX_SLOWDOWN, (
        f"localhost TCP took {slowdown:.1f}x the in-memory transport "
        f"(bound: {MAX_SLOWDOWN}x)"
    )
