"""Tests for the synthetic trace generators and replay utilities."""

from collections import Counter

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.features.ipaddr import ipv4_to_int
from repro.flows.records import PacketRecord
from repro.traces import (
    CaidaLikeTraceGenerator,
    DdosScenario,
    DdosTraceGenerator,
    EnterpriseTraceGenerator,
    MawiLikeTraceGenerator,
    PortScanTraceGenerator,
    ScanScenario,
    ZipfRanks,
    interleave_by_time,
    lognormal_bytes,
    split_by_site,
    time_bins,
    truncated_power_law_sizes,
)
from repro.traces.base import AddressModel, PortModel, ProtocolMix, TraceProfile
from repro.traces.replay import bin_of, paced
from repro.traces.zipf import make_rng, weighted_choice


class TestZipfPrimitives:
    def test_zipf_ranks_are_skewed(self):
        rng = make_rng(1)
        sampler = ZipfRanks(1_000, 1.1, rng)
        samples = sampler.sample(50_000)
        counts = Counter(samples.tolist())
        assert counts[0] > counts.get(500, 0)
        assert samples.min() >= 0 and samples.max() < 1_000

    def test_zipf_probabilities_sum_to_one(self):
        sampler = ZipfRanks(100, 1.0, make_rng(2))
        assert sampler.probabilities().sum() == pytest.approx(1.0)

    def test_zipf_zero_count(self):
        assert ZipfRanks(10, 1.0, make_rng(0)).sample(0).size == 0

    def test_zipf_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ZipfRanks(0, 1.0, make_rng(0))
        with pytest.raises(ConfigurationError):
            ZipfRanks(10, -1.0, make_rng(0))
        with pytest.raises(ConfigurationError):
            ZipfRanks(10, 1.0, make_rng(0)).sample(-1)

    def test_power_law_sizes_within_bounds(self):
        sizes = truncated_power_law_sizes(10_000, 2.0, 1_000, make_rng(3))
        assert sizes.min() >= 1 and sizes.max() <= 1_000
        # Heavy-tailed: most flows are tiny.
        assert np.mean(sizes == 1) > 0.4

    def test_power_law_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            truncated_power_law_sizes(10, 2.0, 0, make_rng(0))

    def test_lognormal_bytes_clipped(self):
        sizes = lognormal_bytes(5_000, 6.0, 1.0, make_rng(4))
        assert sizes.min() >= 40 and sizes.max() <= 1_500

    def test_weighted_choice_distribution(self):
        values = weighted_choice([1, 2], [0.9, 0.1], 10_000, make_rng(5))
        assert np.mean(values == 1) > 0.8

    def test_weighted_choice_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_choice([1, 2], [0.0, 0.0], 10, make_rng(0))
        with pytest.raises(ConfigurationError):
            weighted_choice([], [], 10, make_rng(0))


class TestTraceGenerators:
    def test_caida_reproducible_with_seed(self):
        a = list(CaidaLikeTraceGenerator(seed=7, flow_population=5_000).packets(2_000))
        b = list(CaidaLikeTraceGenerator(seed=7, flow_population=5_000).packets(2_000))
        assert [p.five_tuple for p in a] == [p.five_tuple for p in b]
        assert [p.bytes for p in a] == [p.bytes for p in b]

    def test_caida_different_seeds_differ(self):
        a = list(CaidaLikeTraceGenerator(seed=1, flow_population=5_000).packets(1_000))
        b = list(CaidaLikeTraceGenerator(seed=2, flow_population=5_000).packets(1_000))
        assert [p.five_tuple for p in a] != [p.five_tuple for p in b]

    def test_caida_heavy_tail_shape(self):
        packets = list(CaidaLikeTraceGenerator(seed=3, flow_population=30_000).packets(60_000))
        flow_sizes = Counter(Counter(p.five_tuple for p in packets).values())
        total_flows = sum(flow_sizes.values())
        single = flow_sizes[1] / total_flows
        assert 0.4 < single < 0.85  # "more than half of flows are tiny"

    def test_caida_timestamps_monotone(self):
        packets = list(CaidaLikeTraceGenerator(seed=4).packets(5_000))
        timestamps = [p.timestamp for p in packets]
        assert all(b >= a for a, b in zip(timestamps, timestamps[1:]))

    def test_caida_packets_are_valid(self):
        for packet in CaidaLikeTraceGenerator(seed=5).packets(2_000):
            packet.validate()

    def test_flows_view_aggregates(self):
        generator = CaidaLikeTraceGenerator(seed=6, flow_population=2_000)
        flows = list(generator.flows(5_000))
        assert sum(flow.packets for flow in flows) == 5_000

    def test_mawi_has_more_small_flows_than_caida(self):
        caida = list(CaidaLikeTraceGenerator(seed=7, flow_population=30_000).packets(40_000))
        mawi = list(MawiLikeTraceGenerator(seed=7, flow_population=30_000).packets(40_000))
        caida_flows = len({p.five_tuple for p in caida})
        mawi_flows = len({p.five_tuple for p in mawi})
        assert mawi_flows > caida_flows

    def test_mawi_scan_component_uses_syn_probes(self):
        packets = list(MawiLikeTraceGenerator(seed=8, scan_fraction=0.3).packets(10_000))
        syn_only = [p for p in packets if p.tcp_flags == 0x02]
        assert len(syn_only) > 1_000

    def test_ddos_concentrates_on_victim_subnet(self):
        scenario = DdosScenario(victim_subnet="203.0.113.0", attack_fraction=0.4)
        packets = list(DdosTraceGenerator(scenario=scenario, seed=9).packets(20_000))
        victim_net = ipv4_to_int("203.0.113.0") & 0xFFFFFF00
        share = sum(1 for p in packets if (p.dst_ip & 0xFFFFFF00) == victim_net) / len(packets)
        assert share == pytest.approx(0.4, abs=0.05)
        attack = [p for p in packets if (p.dst_ip & 0xFFFFFF00) == victim_net]
        assert all(p.dst_port == scenario.attack_port for p in attack)

    def test_portscan_modes(self):
        horizontal = PortScanTraceGenerator(
            ScanScenario(mode="horizontal", scan_fraction=0.5), seed=10
        )
        packets = list(horizontal.packets(4_000))
        scanner = ipv4_to_int("198.51.100.77")
        probes = [p for p in packets if p.src_ip == scanner]
        assert len({p.dst_ip for p in probes}) > 500
        assert len({p.dst_port for p in probes}) == 1

        vertical = PortScanTraceGenerator(
            ScanScenario(mode="vertical", scan_fraction=0.5), seed=10
        )
        probes = [p for p in vertical.packets(4_000) if p.src_ip == scanner]
        assert len({p.dst_port for p in probes}) > 500
        assert len({p.dst_ip for p in probes}) == 1

    def test_scan_scenario_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ScanScenario(mode="diagonal")

    def test_enterprise_traffic_stays_in_site_prefix(self):
        generator = EnterpriseTraceGenerator(site_prefix="100.64.0.0", site_prefix_bits=16, seed=11)
        packets = list(generator.packets(5_000))
        site = ipv4_to_int("100.64.0.0")
        assert all((p.dst_ip & 0xFFFF0000) == site for p in packets)
        peers = {generator.peer_of(p.src_ip) for p in packets}
        assert None not in peers
        assert len(peers) == 5

    def test_trace_profile_validation(self):
        with pytest.raises(ConfigurationError):
            TraceProfile(flow_population=0)
        with pytest.raises(ConfigurationError):
            TraceProfile(mean_packet_interval=0)

    def test_profile_scaled(self):
        profile = TraceProfile(flow_population=100)
        assert profile.scaled(500).flow_population == 500
        assert profile.flow_population == 100

    def test_address_model_hierarchical_concentration(self):
        model = AddressModel(top_count=8, top_exponent=1.5)
        addresses = model.sample(20_000, make_rng(12))
        top_octets = Counter((int(a) >> 24) for a in addresses)
        assert len(top_octets) <= 8
        assert top_octets.most_common(1)[0][1] > 20_000 / 8

    def test_port_model_mixes_well_known_and_ephemeral(self):
        ports = PortModel(well_known_fraction=0.7).sample(20_000, make_rng(13))
        well_known_share = np.isin(ports, PortModel().well_known).mean()
        assert 0.6 < well_known_share < 0.85

    def test_protocol_mix(self):
        protocols = ProtocolMix().sample(10_000, make_rng(14))
        assert np.mean(protocols == 6) > 0.7


class TestReplayUtilities:
    def _packets(self, count, start=0.0, gap=1.0):
        return [PacketRecord(start + i * gap, 1, 2, 3, 4, bytes=10) for i in range(count)]

    def test_time_bins_groups_consecutively(self):
        packets = self._packets(10, gap=1.0)
        bins = list(time_bins(iter(packets), width=3.0))
        assert [len(records) for _, records in bins] == [3, 3, 3, 1]
        assert [bin_.index for bin_, _ in bins] == [0, 1, 2, 3]

    def test_time_bins_emits_empty_gaps(self):
        packets = [PacketRecord(t, 1, 2, 3, 4) for t in (0.0, 10.0)]
        bins = list(time_bins(iter(packets), width=3.0))
        assert [bin_.index for bin_, _ in bins] == [0, 1, 2, 3]
        assert [len(records) for _, records in bins] == [1, 0, 0, 1]

    def test_time_bins_rejects_unordered_input(self):
        packets = [PacketRecord(10.0, 1, 2, 3, 4), PacketRecord(1.0, 1, 2, 3, 4)]
        with pytest.raises(ConfigurationError):
            list(time_bins(iter(packets), width=3.0))

    def test_time_bins_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            list(time_bins(iter([]), width=0.0))

    def test_bin_of(self):
        assert bin_of(10.0, origin=0.0, width=3.0) == 3
        with pytest.raises(ConfigurationError):
            bin_of(1.0, 0.0, 0.0)

    def test_timebin_contains(self):
        bins = list(time_bins(iter(self._packets(3)), width=2.0))
        first_bin, records = bins[0]
        assert all(first_bin.contains(r.timestamp) for r in records)

    def test_split_by_site_hash_sharding(self):
        packets = [PacketRecord(0.0, src, 2, 3, 4) for src in range(1_000)]
        buckets = split_by_site(packets, ["a", "b", "c"])
        assert sum(len(v) for v in buckets.values()) == 1_000
        assert all(len(v) > 100 for v in buckets.values())

    def test_split_by_site_custom_function(self):
        packets = self._packets(10)
        buckets = split_by_site(packets, ["even", "odd"], site_of=lambda p: "even" if int(p.timestamp) % 2 == 0 else "odd")
        assert len(buckets["even"]) == 5

    def test_split_by_site_rejects_unknown_site(self):
        with pytest.raises(ConfigurationError):
            split_by_site(self._packets(2), ["a"], site_of=lambda p: "b")

    def test_interleave_by_time_orders_globally(self):
        stream_a = self._packets(5, start=0.0, gap=2.0)
        stream_b = self._packets(5, start=1.0, gap=2.0)
        merged = list(interleave_by_time([iter(stream_a), iter(stream_b)]))
        timestamps = [p.timestamp for p in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 10

    def test_paced_fast_forward(self):
        pairs = list(paced(self._packets(5)))
        assert len(pairs) == 5
        assert pairs[0][0] == 0.0
        with pytest.raises(ConfigurationError):
            list(paced(self._packets(2), speedup=0))
