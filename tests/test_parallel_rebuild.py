"""Parallel rebuild fold + primed query index (tentpole B and C).

The contract under test: :func:`repro.core.compaction.parallel_rebuild`
(and its sharded wrapper :meth:`ShardedFlowtree.compact_parallel`) is
**byte-identical** to the serial rebuild fold — each shard's fold runs the
exact serial algorithm on the exact serial input, only in a worker
process — and a rebuild leaves the per-level query index *warm* (primed
from the fold's own signatures) instead of cold.
"""

from __future__ import annotations

import random

import pytest

from helpers import make_record

from repro.core.compaction import (
    _parallel_fold_worker,
    flatten_levels,
    fold_levels,
    parallel_rebuild,
)
from repro.core.config import FlowtreeConfig
from repro.core.estimator import estimate_many
from repro.core.flowtree import Flowtree
from repro.core.serialization import to_bytes
from repro.core.sharded import ShardedFlowtree
from repro.features.schema import SCHEMA_4F


def zipfish_records(n: int, seed: int = 11):
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        records.append(
            make_record(
                src=f"10.{rng.randint(0, 40)}.{rng.randint(0, 80)}.{rng.randint(0, 255)}",
                dst=f"192.168.{rng.randint(0, 3)}.{rng.randint(0, 255)}",
                sport=rng.randint(1024, 1024 + 2000),
                dport=rng.choice([53, 80, 443, 8080]),
                protocol=rng.choice([6, 17]),
                packets=rng.randint(1, 40),
                bytes=rng.randint(40, 1500),
            )
        )
    return records


def grown_tree(config: FlowtreeConfig, n: int = 4000) -> Flowtree:
    tree = Flowtree(SCHEMA_4F, config)
    tree.add_records(zipfish_records(n))
    return tree


REBUILD_CONFIG = FlowtreeConfig(max_nodes=300, compaction="rebuild")


class TestByteIdentity:
    def test_in_process_fold_matches_serial_compact(self):
        serial = grown_tree(REBUILD_CONFIG)
        parallel = grown_tree(REBUILD_CONFIG)
        removed = serial.compact()
        folded = parallel_rebuild([parallel], processes=1)
        assert folded == removed > 0
        assert to_bytes(serial) == to_bytes(parallel)

    def test_worker_fold_matches_serial_compact(self):
        serial = grown_tree(REBUILD_CONFIG)
        parallel = grown_tree(REBUILD_CONFIG)
        serial.compact()
        parallel_rebuild([parallel, grown_tree(REBUILD_CONFIG)], processes=2)
        assert to_bytes(serial) == to_bytes(parallel)

    def test_stats_match_serial_compact(self):
        serial = grown_tree(REBUILD_CONFIG)
        parallel = grown_tree(REBUILD_CONFIG)
        serial.compact()
        parallel_rebuild([parallel], processes=1)
        assert parallel.stats.snapshot() == serial.stats.snapshot()

    def test_under_target_trees_are_skipped(self):
        small = Flowtree(SCHEMA_4F, REBUILD_CONFIG)
        small.add_records(zipfish_records(20))
        before = to_bytes(small)
        assert parallel_rebuild([small], processes=2) == 0
        assert to_bytes(small) == before
        assert small.stats.rebuilds == 0

    def test_worker_function_is_deterministic(self):
        # The same flattened payload folds to the same survivors in-process
        # and across repeated calls — the property the per-shard split
        # relies on (a worker is just "the same code, elsewhere").
        tree = grown_tree(REBUILD_CONFIG)
        from repro.core.node import Counters

        def payload():
            levels, before = flatten_levels(grown_tree(REBUILD_CONFIG), ())
            root = tree.root.counters
            return (
                SCHEMA_4F.name,
                REBUILD_CONFIG,
                dict(levels),
                before,
                Counters(root.packets, root.bytes, root.flows),
                300,
            )

        first = _parallel_fold_worker(payload())
        second = _parallel_fold_worker(payload())
        assert first == second


class TestShardedCompactParallel:
    @pytest.mark.parametrize("processes", [1, 3])
    def test_byte_identical_to_serial_compact(self, processes):
        config = FlowtreeConfig(max_nodes=600, compaction="rebuild")
        records = zipfish_records(6000, seed=23)
        serial = ShardedFlowtree(SCHEMA_4F, config, num_shards=4)
        parallel = ShardedFlowtree(SCHEMA_4F, config, num_shards=4)
        serial.add_records(records)
        parallel.add_records(records)
        removed = serial.compact()
        folded = parallel.compact_parallel(processes=processes)
        assert folded == removed
        assert [to_bytes(shard) for shard in serial._shards] == [
            to_bytes(shard) for shard in parallel._shards
        ]
        parallel.validate()


class TestPrimedIndex:
    def test_rebuild_leaves_index_warm(self):
        tree = grown_tree(REBUILD_CONFIG)
        tree.compact()
        assert tree._query_index._valid

    def test_parallel_rebuild_leaves_index_warm(self):
        tree = grown_tree(REBUILD_CONFIG)
        parallel_rebuild([tree], processes=1)
        assert tree._query_index._valid

    def test_primed_index_answers_match_cold_rebuild(self):
        primed = grown_tree(REBUILD_CONFIG)
        primed.compact()
        cold = grown_tree(REBUILD_CONFIG)
        cold.compact()
        cold._query_index.invalidate()    # force the from-scratch O(n) build
        keys = [node.key for node in cold._all_nodes()]
        assert estimate_many(primed, keys) == estimate_many(cold, keys)

    def test_primed_index_tracks_later_mutations(self):
        tree = grown_tree(REBUILD_CONFIG)
        tree.compact()
        tree.add_records(zipfish_records(500, seed=99))
        reference = grown_tree(REBUILD_CONFIG)
        reference.compact()
        reference.add_records(zipfish_records(500, seed=99))
        reference._query_index.invalidate()
        keys = [node.key for node in reference._all_nodes()][:200]
        assert estimate_many(tree, keys) == estimate_many(reference, keys)

    def test_fold_levels_signatures_cover_every_survivor(self):
        from repro.core.query import signature_at

        tree = grown_tree(REBUILD_CONFIG)
        levels, before = flatten_levels(tree, ())
        survivors, _ = fold_levels(
            levels, before, tree.root.counters, 300,
            tree.schema, tree.chain_builder, 0,
        )
        for key, _entry, sig in survivors:
            assert sig == signature_at(key, key.specificity_vector)
