"""Tests for the real TCP transport: framing, server, client, deployments."""

import socket
import struct

import pytest

from helpers import make_timed_record
from repro.core.errors import DaemonError, TransportError
from repro.core.key import FlowKey
from repro.distributed import (
    Collector,
    Deployment,
    DeploymentCloseError,
    FlowtreeDaemon,
    NetConfig,
    SimulatedTransport,
    SummaryMessage,
    site_shard,
)
from repro.distributed.net import CollectorServer, SiteClient
from repro.distributed.net.framing import (
    MAX_FRAME_BYTES,
    AckFrame,
    FrameDecoder,
    HelloFrame,
    SummaryFrame,
    decode_body,
    encode_ack,
    encode_frame,
    encode_hello,
    encode_summary,
    encode_summary_body,
)
from repro.features.schema import SCHEMA_2F_SRC_DST


def _records(count=300, bins=3):
    return [
        make_timed_record(
            timestamp=(i % bins) * 60.0,
            src=f"10.0.{i % 4}.{i % 250 or 1}",
            dst=f"192.168.1.{i % 200 or 1}",
            packets=1 + i % 5,
        )
        for i in range(count)
    ]


def _capture_messages(site="site-a", count=200, bins=2):
    """Real summary messages, captured off a daemon via the simulated transport."""
    transport = SimulatedTransport()
    daemon = FlowtreeDaemon(site, SCHEMA_2F_SRC_DST, transport, bin_width=60.0)
    daemon.consume_records(_records(count=count, bins=bins))
    daemon.flush()
    return [message for _, message in transport.receive("collector")]


def _wire_keys(*wires):
    return [FlowKey.from_wire(SCHEMA_2F_SRC_DST, wire) for wire in wires]


class TestFraming:
    def test_hello_round_trip(self):
        frame = decode_body(encode_hello("site-7", "collector-3"))
        assert isinstance(frame, HelloFrame)
        assert frame.site == "site-7"
        assert frame.destination == "collector-3"

    def test_ack_round_trip(self):
        frame = decode_body(encode_ack(12345))
        assert isinstance(frame, AckFrame)
        assert frame.acked == 12345

    @pytest.mark.parametrize("sequence", [-1, 0, 7, (0xFFFFFFFF << 32) + 9])
    def test_summary_round_trip_preserves_sequence(self, sequence):
        message = SummaryMessage(
            site="edge", bin_index=4, bin_start=240.0, bin_end=300.0,
            kind="diff", payload=b"\x00\x01payload", record_count=17,
            sequence=sequence,
        )
        frame = decode_body(encode_summary(3, encode_summary_body(message)))
        assert isinstance(frame, SummaryFrame)
        assert frame.frame_no == 3
        assert frame.message == message

    def test_torn_frames_decode_byte_at_a_time(self):
        message = SummaryMessage("s", 0, 0.0, 60.0, "full", b"xyz" * 40, sequence=5)
        stream = (
            encode_frame(encode_hello("s", "collector"))
            + encode_frame(encode_summary(1, encode_summary_body(message)))
            + encode_frame(encode_ack(1))
        )
        decoder = FrameDecoder()
        frames = []
        for i in range(len(stream)):
            frames.extend(decoder.feed(stream[i : i + 1]))
        assert [type(f) for f in frames] == [HelloFrame, SummaryFrame, AckFrame]
        assert frames[1].message == message
        assert decoder.buffered_bytes == 0

    def test_chunked_frames_decode_across_boundaries(self):
        message = SummaryMessage("s", 1, 60.0, 120.0, "full", b"p" * 999, sequence=2)
        stream = encode_frame(encode_summary(1, encode_summary_body(message))) * 3
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(stream), 7):
            frames.extend(decoder.feed(stream[start : start + 7]))
        assert len(frames) == 3
        assert all(f.message == message for f in frames)

    def test_oversized_frame_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(TransportError):
            decode_body(b"\xff\x00\x00")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(TransportError):
            decode_body(encode_hello("a", "b") + b"junk")

    def test_frame_numbers_start_at_one(self):
        with pytest.raises(TransportError):
            encode_summary(0, b"body")

    def test_unknown_kind_code_rejected_at_decode(self):
        message = SummaryMessage("s", 0, 0.0, 60.0, "full", b"")
        body = bytearray(encode_summary_body(message))
        kind_offset = 2 + len(b"s") + 24  # site prefix + bin_index/start/end
        assert body[kind_offset] == 0  # "full"
        body[kind_offset] = 9
        with pytest.raises(TransportError, match="kind code"):
            decode_body(encode_summary(1, bytes(body)))

    def test_wire_bytes_cover_prefix_and_body(self):
        body = encode_ack(1)
        frame = decode_body(body)
        assert frame.wire_bytes == len(encode_frame(body))

    def test_corrupted_body_byte_fails_the_frame_crc(self):
        message = SummaryMessage("s", 0, 0.0, 60.0, "full", b"payload" * 20, sequence=1)
        wire = bytearray(encode_frame(encode_summary(1, encode_summary_body(message))))
        for index in (8, len(wire) // 2, len(wire) - 1):  # first body byte, middle, last
            corrupted = bytearray(wire)
            corrupted[index] ^= 0xFF
            with pytest.raises(TransportError, match="CRC"):
                FrameDecoder().feed(bytes(corrupted))

    def test_corrupted_crc_field_fails_the_frame_crc(self):
        wire = bytearray(encode_frame(encode_hello("s", "collector")))
        wire[5] ^= 0x01  # inside the 4-byte CRC trailer after the length prefix
        with pytest.raises(TransportError, match="CRC"):
            FrameDecoder().feed(bytes(wire))

    def test_clean_frame_after_crc_check_still_decodes(self):
        body = encode_hello("s", "collector")
        frames = FrameDecoder().feed(encode_frame(body) * 2)
        assert [type(f) for f in frames] == [HelloFrame, HelloFrame]


class TestServerClient:
    def test_end_to_end_matches_simulated_transport(self):
        simulated = SimulatedTransport()
        sim_daemon = FlowtreeDaemon("edge", SCHEMA_2F_SRC_DST, simulated, bin_width=60.0)
        sim_collector = Collector(SCHEMA_2F_SRC_DST, simulated)
        sim_daemon.consume_records(_records())
        sim_daemon.flush()
        sim_collector.poll()

        with CollectorServer().start() as server:
            collector = Collector(SCHEMA_2F_SRC_DST, server)
            with SiteClient(server.host, server.port, site="edge") as client:
                daemon = FlowtreeDaemon("edge", SCHEMA_2F_SRC_DST, client, bin_width=60.0)
                daemon.consume_records(_records())
                daemon.flush()
                client.drain(timeout=10.0)
                collector.poll()

                # identical payload accounting, identical answers
                assert collector.bytes_received == sim_collector.bytes_received
                assert collector.messages_processed == sim_collector.messages_processed
                sim_log = simulated.channel_log("edge", "collector")
                tcp_log = client.channel_log("edge", "collector")
                assert tcp_log.payload_bytes == sim_log.payload_bytes
                assert tcp_log.messages == sim_log.messages
                assert tcp_log.overhead_bytes > 0
                # server-side accounting mirrors the client's exactly
                server_log = server.channel_log("edge", "collector")
                assert server_log.payload_bytes == tcp_log.payload_bytes
                assert server_log.overhead_bytes == tcp_log.overhead_bytes
                keys = _wire_keys(("10.0.1.0/24", "*"), ("*", "*"))
                assert collector.estimate_many(keys) == sim_collector.estimate_many(keys)

    def test_reconnect_delivers_exactly_once(self):
        with CollectorServer().start() as server:
            collector = Collector(SCHEMA_2F_SRC_DST, server)
            client = SiteClient(
                server.host, server.port, site="edge",
                backoff_base=0.02, backoff_max=0.2,
            )
            try:
                client.register("edge")
                client.register("collector")
                first, second = _capture_messages(site="edge", bins=2)[:2]
                client.send("edge", "collector", first)
                client.drain(timeout=10.0)
                server.stop()
                # queued while the collector is down; the sender loop is
                # in its reconnect-with-backoff cycle the whole time
                client.send("edge", "collector", second)
                assert client.pending("collector") == 1
                server.start()
                client.drain(timeout=10.0)
                collector.poll()
                assert collector.messages_processed == 2
                assert collector.duplicates_dropped == 0
                assert client.stats()["connects"] >= 2
            finally:
                client.abort()

    def test_replayed_frames_are_deduplicated(self):
        """A client that never saw its acks resends; the collector dedups."""
        messages = _capture_messages(site="edge", bins=2)
        assert len(messages) >= 2
        with CollectorServer().start() as server:
            collector = Collector(SCHEMA_2F_SRC_DST, server)
            for _ in range(2):  # same frames, two connections
                self._replay_raw(server, "edge", messages)
            collector.poll()
            assert collector.messages_processed == len(messages)
            assert collector.duplicates_dropped == len(messages)

    def _replay_raw(self, server, site, messages):
        """Ship messages over a bare socket and wait for the cumulative ack."""
        stream = encode_frame(encode_hello(site, "collector"))
        for frame_no, message in enumerate(messages, start=1):
            stream += encode_frame(encode_summary(frame_no, encode_summary_body(message)))
        with socket.create_connection((server.host, server.port), timeout=5.0) as sock:
            sock.sendall(stream)
            sock.settimeout(5.0)
            decoder = FrameDecoder()
            acked = 0
            while acked < len(messages):
                chunk = sock.recv(4096)
                assert chunk, "server closed the connection before acking"
                for frame in decoder.feed(chunk):
                    assert isinstance(frame, AckFrame)
                    acked = frame.acked

    def test_out_of_sequence_frame_drops_connection(self):
        message = _capture_messages(site="edge", bins=1)[0]
        with CollectorServer().start() as server:
            Collector(SCHEMA_2F_SRC_DST, server)
            stream = encode_frame(encode_hello("edge", "collector"))
            stream += encode_frame(encode_summary(2, encode_summary_body(message)))
            with socket.create_connection((server.host, server.port), timeout=5.0) as sock:
                sock.sendall(stream)
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""  # dropped without an ack
            assert server.stats()["protocol_errors"] == 1
            assert server.pending("collector") == 0

    def test_hello_for_unknown_endpoint_drops_connection(self):
        with CollectorServer().start() as server:
            Collector(SCHEMA_2F_SRC_DST, server)
            with socket.create_connection((server.host, server.port), timeout=5.0) as sock:
                sock.sendall(encode_frame(encode_hello("edge", "ghost")))
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""
            assert server.stats()["protocol_errors"] == 1

    def test_corrupt_summary_payload_in_valid_frame_kills_connection(self):
        """Pinned outcome: a SUMMARY whose frame decodes cleanly (length and
        CRC both valid) but whose Flowtree payload is garbage must kill the
        connection as a protocol error — never be acked, never be ingested."""
        poison = SummaryMessage(
            "edge", 0, 0.0, 60.0, "full", b"\xff\xfenot a flowtree", sequence=0
        )
        with CollectorServer().start() as server:
            collector = Collector(SCHEMA_2F_SRC_DST, server)
            stream = encode_frame(encode_hello("edge", "collector"))
            stream += encode_frame(encode_summary(1, encode_summary_body(poison)))
            with socket.create_connection((server.host, server.port), timeout=5.0) as sock:
                sock.sendall(stream)
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""  # killed without an ack
            assert server.stats()["protocol_errors"] == 1
            assert server.pending("collector") == 0  # nothing reached the inbox
            assert collector.poll() == 0
            assert collector.messages_processed == 0
            assert collector.sites == []

    def test_wire_corruption_detected_before_ack(self):
        """A frame corrupted on the wire is a CRC protocol error: the sender
        never sees an ack for it, so the resend path owns recovery."""
        message = _capture_messages(site="edge", bins=1)[0]
        with CollectorServer().start() as server:
            collector = Collector(SCHEMA_2F_SRC_DST, server)
            wire = bytearray(
                encode_frame(encode_summary(1, encode_summary_body(message)))
            )
            wire[len(wire) // 2] ^= 0xFF
            stream = encode_frame(encode_hello("edge", "collector")) + bytes(wire)
            with socket.create_connection((server.host, server.port), timeout=5.0) as sock:
                sock.sendall(stream)
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""
            assert server.stats()["protocol_errors"] == 1
            assert collector.poll() == 0

    def test_backpressure_raises_when_collector_stalls(self):
        # no server listening: the queue fills and stays full
        client = SiteClient(
            "127.0.0.1", 1, site="edge", max_pending=1, send_timeout=0.2,
            backoff_base=0.02, backoff_max=0.2,
        )
        try:
            client.register("edge")
            client.register("collector")
            message = _capture_messages(site="edge", bins=1)[0]
            client.send("edge", "collector", message)  # fills the queue
            with pytest.raises(TransportError, match="stalled or unreachable"):
                client.send("edge", "collector", message)
            assert client.outstanding == 1
        finally:
            client.abort()

    def test_close_raises_when_backlog_cannot_drain(self):
        client = SiteClient(
            "127.0.0.1", 1, site="edge", backoff_base=0.02, backoff_max=0.2,
        )
        client.register("edge")
        client.register("collector")
        client.send("edge", "collector", _capture_messages(site="edge", bins=1)[0])
        with pytest.raises(TransportError, match="drain"):
            client.close(timeout=0.3)
        assert not client.running  # torn down despite the drain failure

    def test_client_send_validation(self):
        client = SiteClient("127.0.0.1", 1, site="edge")
        client.register("edge")
        client.register("collector")
        message = SummaryMessage("edge", 0, 0.0, 60.0, "full", b"x")
        with pytest.raises(TransportError, match="unknown source"):
            client.send("ghost", "collector", message)
        with pytest.raises(TransportError, match="unknown destination"):
            client.send("edge", "ghost", message)
        client.register("other")
        with pytest.raises(TransportError, match="cannot send as"):
            client.send("other", "collector", message)
        with pytest.raises(TransportError, match="delivers to"):
            client.send("edge", "other", message)
        with pytest.raises(TransportError, match="SummaryMessage"):
            client.send("edge", "collector", type("Sized", (), {"payload_bytes": 3})())
        assert client.receive("edge") == []
        with pytest.raises(TransportError):
            client.receive("edge", limit=-1)
        client.abort()
        with pytest.raises(TransportError, match="closed"):
            client.send("edge", "collector", message)

    def test_server_is_receive_only(self):
        with CollectorServer().start() as server:
            server.register("collector")
            with pytest.raises(TransportError, match="receive side"):
                server.send("a", "collector", object())
            with pytest.raises(TransportError):
                server.receive("ghost")
            with pytest.raises(TransportError):
                server.receive("collector", limit=-1)
            with pytest.raises(TransportError, match="already listening"):
                server.start()

    def test_server_closed_for_good(self):
        server = CollectorServer().start()
        server.close()
        with pytest.raises(TransportError, match="closed"):
            server.start()


class TestDeploymentTcp:
    def _build(self, transport, collectors=1, net=None):
        deployment = Deployment(
            SCHEMA_2F_SRC_DST,
            ["nyc", "lax", "fra", "sin", "gru"],
            bin_width=60.0,
            transport=transport,
            collectors=collectors,
            net=net,
        )
        for name in deployment.site_names:
            deployment.attach_records(name, _records())
        return deployment

    def test_tcp_replay_matches_memory_byte_identically(self):
        keys = _wire_keys(("10.0.1.0/24", "*"), ("*", "*"), ("10.0.2.3", "192.168.1.3"))
        with self._build("memory") as memory, self._build("tcp") as tcp:
            memory.run()
            tcp.run()
            assert tcp.query_engine.estimate_many(keys) == memory.query_engine.estimate_many(keys)
            assert tcp.collector.bytes_received == memory.collector.bytes_received
            assert tcp.transfer_bytes() > 0

    def test_mid_replay_collector_restart_is_exactly_once(self):
        keys = _wire_keys(("10.0.1.0/24", "*"), ("*", "*"))
        net = NetConfig(backoff_base=0.02, backoff_max=0.2)
        with self._build("memory") as memory, self._build("tcp", net=net) as tcp:
            memory.run()
            names = tcp.site_names
            for name in names[:2]:
                tcp.site(name).replay()
            tcp.restart_collector_servers()
            for name in names[2:]:
                tcp.site(name).replay()
            tcp.drain()
            for collector in tcp.collectors:
                collector.poll()
            assert tcp.query_engine.estimate_many(keys) == memory.query_engine.estimate_many(keys)
            assert tcp.collector.messages_processed == memory.collector.messages_processed

    @pytest.mark.parametrize("transport", ["memory", "tcp"])
    def test_multi_collector_scatter_gather_matches_single(self, transport):
        keys = _wire_keys(("10.0.1.0/24", "*"), ("*", "*"))
        with self._build("memory") as single, self._build(transport, collectors=2) as multi:
            single.run()
            multi.run()
            assert multi.query_engine.estimate_many(keys) == single.query_engine.estimate_many(keys)
            assert multi.query_engine.sites == single.site_names
            # sites actually landed on their CRC-32 shard
            for name in multi.site_names:
                owner = multi.collector_for(name)
                assert owner is multi.collectors[site_shard(name, 2)]
                assert name in owner.sites
            assert sum(c.messages_processed for c in multi.collectors) == (
                single.collector.messages_processed
            )
            with pytest.raises(DaemonError, match="shards sites across"):
                multi.collector

    def test_tcp_deployment_has_no_shared_transport(self):
        with self._build("tcp") as deployment:
            with pytest.raises(DaemonError, match="no shared transport"):
                deployment.transport
            client = deployment.site_transport("nyc")
            assert isinstance(client, SiteClient)
            assert deployment.servers and deployment.servers[0].running

    def test_invalid_configurations_rejected(self):
        with pytest.raises(DaemonError, match="transport must be one of"):
            Deployment(SCHEMA_2F_SRC_DST, ["a"], transport="carrier-pigeon")
        with pytest.raises(DaemonError, match="at least one collector"):
            Deployment(SCHEMA_2F_SRC_DST, ["a"], collectors=0)
        with pytest.raises(DaemonError, match="only applies"):
            Deployment(SCHEMA_2F_SRC_DST, ["a"], transport="memory", net=NetConfig())

    def test_multi_collector_rejects_durable_store(self, tmp_path):
        from repro.distributed import CollectorConfig

        config = CollectorConfig(store="sqlite", store_path=str(tmp_path / "c.db"))
        with pytest.raises(DaemonError, match="single-collector"):
            Deployment(SCHEMA_2F_SRC_DST, ["a", "b"], collectors=2, collector_config=config)


class TestDeploymentCloseErrors:
    def _boom(self, label):
        def raiser():
            raise RuntimeError(f"boom {label}")

        return raiser

    def test_single_close_error_reraised_as_is(self):
        deployment = Deployment(SCHEMA_2F_SRC_DST, ["a", "b"])
        deployment.daemon("a").close = self._boom("a")
        with pytest.raises(RuntimeError, match="boom a"):
            deployment.close()

    def test_all_close_errors_collected(self):
        deployment = Deployment(SCHEMA_2F_SRC_DST, ["a", "b", "c"])
        deployment.daemon("a").close = self._boom("a")
        deployment.daemon("c").close = self._boom("c")
        closed = []
        survivor_close = deployment.daemon("b").close
        deployment.daemon("b").close = lambda: (closed.append("b"), survivor_close())
        with pytest.raises(DeploymentCloseError) as excinfo:
            deployment.close()
        labels = [label for label, _ in excinfo.value.errors]
        assert labels == ["daemon 'a'", "daemon 'c'"]
        assert "boom a" in str(excinfo.value) and "boom c" in str(excinfo.value)
        assert excinfo.value.__cause__ is excinfo.value.errors[0][1]
        # daemon 'b' was still closed despite the earlier failure
        assert closed == ["b"]


class TestSiteShard:
    def test_single_collector_is_shard_zero(self):
        assert site_shard("anything", 1) == 0

    def test_placement_is_stable_and_in_range(self):
        names = [f"site-{i}" for i in range(50)]
        shards = [site_shard(name, 3) for name in names]
        assert shards == [site_shard(name, 3) for name in names]
        assert set(shards) <= {0, 1, 2}
        assert len(set(shards)) > 1

    def test_rejects_zero_collectors(self):
        with pytest.raises(DaemonError):
            site_shard("a", 0)
