"""Tests for the pcap reader/writer, CSV archives and sampling."""

import io

import pytest

from repro.core.errors import ConfigurationError, SerializationError
from repro.features.ipaddr import ipv4_to_int
from repro.flows.csv_io import csv_export_size, flows_to_csv_text, read_csv, write_csv
from repro.flows.pcap import read_pcap, write_pcap
from repro.flows.records import FlowRecord, PacketRecord
from repro.flows.sampling import (
    SamplingAccountant,
    deterministic_sample,
    probabilistic_sample,
    scale_counters,
)


class TestPcap:
    def test_round_trip_tcp_and_udp(self, packet_records_small):
        tcp = PacketRecord(1.5, ipv4_to_int("10.0.0.1"), ipv4_to_int("192.0.2.1"),
                           12345, 443, protocol=6, bytes=600, tcp_flags=0x12)
        packets = [tcp] + packet_records_small[:5]
        buffer = io.BytesIO()
        assert write_pcap(buffer, packets) == len(packets)
        buffer.seek(0)
        decoded = list(read_pcap(buffer))
        assert len(decoded) == len(packets)
        assert decoded[0].src_port == 12345
        assert decoded[0].dst_port == 443
        assert decoded[0].protocol == 6
        assert decoded[0].tcp_flags == 0x12
        assert decoded[1].protocol == 17
        assert decoded[1].src_ip == packet_records_small[0].src_ip

    def test_timestamps_preserved(self):
        packet = PacketRecord(1234.5678, 1, 2, 3, 4, bytes=100)
        buffer = io.BytesIO()
        write_pcap(buffer, [packet])
        buffer.seek(0)
        decoded = next(read_pcap(buffer))
        assert decoded.timestamp == pytest.approx(1234.5678, abs=1e-4)

    def test_icmp_packet_has_zero_ports(self):
        packet = PacketRecord(1.0, 1, 2, 0, 0, protocol=1, bytes=64)
        buffer = io.BytesIO()
        write_pcap(buffer, [packet])
        buffer.seek(0)
        decoded = next(read_pcap(buffer))
        assert decoded.protocol == 1
        assert decoded.src_port == 0 and decoded.dst_port == 0

    def test_file_round_trip(self, tmp_path, packet_records_small):
        path = tmp_path / "capture.pcap"
        write_pcap(path, packet_records_small)
        decoded = list(read_pcap(path))
        assert len(decoded) == len(packet_records_small)

    def test_rejects_non_pcap_data(self):
        with pytest.raises(SerializationError):
            list(read_pcap(io.BytesIO(b"definitely not a capture file")))

    def test_rejects_truncated_packet(self, packet_records_small):
        buffer = io.BytesIO()
        write_pcap(buffer, packet_records_small[:1])
        data = buffer.getvalue()
        with pytest.raises(SerializationError):
            list(read_pcap(io.BytesIO(data[:-5])))


class TestCsv:
    def test_round_trip(self, flow_records_small, tmp_path):
        path = tmp_path / "flows.csv"
        assert write_csv(path, flow_records_small) == len(flow_records_small)
        decoded = list(read_csv(path))
        assert len(decoded) == len(flow_records_small)
        assert decoded[0].src_ip == flow_records_small[0].src_ip
        assert decoded[0].dst_port == flow_records_small[0].dst_port
        assert decoded[-1].packets == flow_records_small[-1].packets

    def test_text_helpers(self, flow_records_small):
        text = flows_to_csv_text(flow_records_small)
        assert text.splitlines()[0].startswith("start_time,")
        assert csv_export_size(flow_records_small) == len(text.encode("utf-8"))

    def test_read_rejects_empty_file(self):
        with pytest.raises(SerializationError):
            list(read_csv(io.StringIO("")))

    def test_read_rejects_missing_columns(self):
        with pytest.raises(SerializationError):
            list(read_csv(io.StringIO("src_ip,dst_ip\n1.1.1.1,2.2.2.2\n")))

    def test_read_reports_malformed_line(self):
        text = (
            "start_time,end_time,src_ip,dst_ip,src_port,dst_port,protocol,packets,bytes\n"
            "1,2,10.0.0.1,192.0.2.1,80,not-a-port,6,1,100\n"
        )
        with pytest.raises(SerializationError) as excinfo:
            list(read_csv(io.StringIO(text)))
        assert "line 2" in str(excinfo.value)


class TestSampling:
    def test_deterministic_keeps_every_nth(self):
        kept = list(deterministic_sample(range(100), rate=10))
        assert kept == list(range(0, 100, 10))

    def test_deterministic_rate_one_keeps_all(self):
        assert list(deterministic_sample(range(5), rate=1)) == [0, 1, 2, 3, 4]

    def test_deterministic_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            list(deterministic_sample(range(5), rate=0))

    def test_probabilistic_is_reproducible_and_plausible(self):
        kept_a = list(probabilistic_sample(range(10_000), probability=0.1, seed=3))
        kept_b = list(probabilistic_sample(range(10_000), probability=0.1, seed=3))
        assert kept_a == kept_b
        assert 700 < len(kept_a) < 1_300

    def test_probabilistic_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            list(probabilistic_sample(range(5), probability=0.0))

    def test_scale_counters(self):
        assert scale_counters(7, 100) == 700
        with pytest.raises(ConfigurationError):
            scale_counters(7, 0)

    def test_accountant_tracks_achieved_rate(self):
        accountant = SamplingAccountant()
        stream = accountant.saw(range(1_000))
        sampled = deterministic_sample(stream, rate=10)
        kept = list(accountant.kept(sampled))
        assert accountant.seen == 1_000
        assert accountant.retained == len(kept) == 100
        assert accountant.achieved_rate == pytest.approx(10.0)

    def test_accountant_empty(self):
        accountant = SamplingAccountant()
        assert accountant.achieved_rate == 0.0
