"""Tests for summary serialization and the query-helper layer."""

import pytest

from helpers import key2, key4, make_record
from repro.core.config import FlowtreeConfig
from repro.core.errors import SerializationError
from repro.core.estimator import (
    children_of,
    coverage,
    decompose,
    drill_down,
    estimate_many,
    estimate_values,
)
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.core.serialization import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    from_bytes,
    from_json,
    size_report,
    to_bytes,
    to_json,
)
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 21, 2 ** 40, 2 ** 63])
    def test_unsigned_round_trip(self, value):
        buffer = bytearray()
        encode_varint(value, buffer)
        decoded, offset = decode_varint(bytes(buffer), 0)
        assert decoded == value
        assert offset == len(buffer)

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 12345, -98765, 2 ** 40, -(2 ** 40)])
    def test_signed_round_trip(self, value):
        buffer = bytearray()
        encode_zigzag(value, buffer)
        decoded, _ = decode_zigzag(bytes(buffer), 0)
        assert decoded == value

    def test_negative_unsigned_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1, bytearray())

    def test_truncated_varint(self):
        with pytest.raises(SerializationError):
            decode_varint(b"\x80", 0)


class TestBinaryFormat:
    @pytest.fixture
    def tree(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=300))
        tree.add_records(packet_stream_small)
        return tree

    def test_round_trip_preserves_everything(self, tree):
        decoded = from_bytes(to_bytes(tree))
        assert decoded.schema == tree.schema
        assert decoded.config.policy == tree.config.policy
        assert decoded.config.max_nodes == tree.config.max_nodes
        assert len(decoded) == len(tree)
        assert decoded.total_counters() == tree.total_counters()
        for key, counters in tree.items():
            assert decoded.complementary_counters(key) == counters
        decoded.validate()

    def test_uncompressed_round_trip(self, tree):
        decoded = from_bytes(to_bytes(tree, compress=False))
        assert decoded.total_counters() == tree.total_counters()

    def test_compression_helps(self, tree):
        assert len(to_bytes(tree, compress=True)) < len(to_bytes(tree, compress=False))

    def test_diff_with_negative_counters_round_trips(self):
        a = Flowtree(SCHEMA_2F_SRC_DST)
        b = Flowtree(SCHEMA_2F_SRC_DST)
        a.add(key2("10.0.0.1", "192.0.2.1"), packets=10)
        delta = b.diff(a)
        decoded = from_bytes(to_bytes(delta))
        assert decoded.complementary_counters(key2("10.0.0.1", "192.0.2.1")).packets == -10

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_payload_rejected(self, tree):
        payload = to_bytes(tree)
        with pytest.raises(SerializationError):
            from_bytes(payload[:-10])

    def test_empty_tree_round_trip(self):
        tree = Flowtree(SCHEMA_2F_SRC_DST)
        decoded = from_bytes(to_bytes(tree))
        assert len(decoded) == 1
        assert decoded.total_counters().is_zero

    def test_size_report_keys(self, tree):
        report = size_report(tree)
        assert set(report) == {"nodes", "binary_bytes", "binary_compressed_bytes", "json_bytes"}
        assert report["nodes"] == len(tree)
        assert report["binary_compressed_bytes"] <= report["binary_bytes"]


class TestJsonFormat:
    def test_round_trip(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=200))
        tree.add_records(packet_stream_small[:1_000])
        decoded = from_json(to_json(tree))
        assert decoded.total_counters() == tree.total_counters()
        assert len(decoded) == len(tree)

    def test_rejects_non_flowtree_json(self):
        with pytest.raises(SerializationError):
            from_json('{"format": "something-else"}')

    def test_rejects_invalid_json(self):
        with pytest.raises(SerializationError):
            from_json("{not json")

    def test_indentation_option(self):
        tree = Flowtree(SCHEMA_2F_SRC_DST)
        tree.add(key2("10.0.0.1", "192.0.2.1"))
        assert "\n" in to_json(tree, indent=2)


class TestEstimatorHelpers:
    @pytest.fixture
    def tree(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=10_000))
        tree.add_record(make_record(src="10.1.1.1", dport=443, packets=60))
        tree.add_record(make_record(src="10.1.2.1", dport=443, packets=30))
        tree.add_record(make_record(src="10.9.0.1", dport=80, packets=10))
        tree.add_record(make_record(src="192.0.2.1", dport=22, packets=5))
        return tree

    def test_estimate_many_and_values(self, tree):
        keys = [key4("10.0.0.0/8", "*", "*", "*"), key4("192.0.2.0/24", "*", "*", "*")]
        estimates = estimate_many(tree, keys)
        assert estimates[keys[0]].value() == 100
        values = estimate_values(tree, keys)
        assert values[keys[1]] == 5

    def test_decompose_sums_to_estimate(self, tree):
        query = key4("10.0.0.0/8", "*", "*", "*")
        terms = decompose(tree, query)
        assert sum(term.value for term in terms) == tree.estimate(query).value()
        assert all(term.kind in ("node", "residual") for term in terms)

    def test_decompose_kept_node(self, tree):
        key = FlowKey.from_record(SCHEMA_4F, make_record(src="10.1.1.1", dport=443))
        terms = decompose(tree, key)
        assert len(terms) == 1
        assert terms[0].kind == "node"
        assert terms[0].value == 60

    def test_children_of_breaks_down_by_feature(self, tree):
        breakdown = children_of(tree, key4("10.0.0.0/8", "*", "*", "*"), feature_index=0, step=8)
        rendered = {key.pretty(): value for key, value in breakdown}
        assert any("10.1.0.0/16" in name for name in rendered)
        assert sum(rendered.values()) == 100

    def test_children_of_bad_index(self, tree):
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            children_of(tree, key4("*", "*", "*", "*"), feature_index=9)

    def test_drill_down_follows_dominant_branch(self, tree):
        path = drill_down(tree, key4("*", "*", "*", "*"), feature_index=0, step=8, dominance=0.5)
        assert path, "expected at least one drill-down step"
        assert path[0].key[0].to_wire() == "10.0.0.0/8"
        # Shares are within (0, 1].
        assert all(0 < step.share_of_parent <= 1 for step in path)

    def test_drill_down_stops_when_nothing_dominates(self, tree):
        path = drill_down(tree, key4("*", "*", "*", "*"), feature_index=0, step=8, dominance=0.99)
        assert path == []

    def test_coverage(self, tree):
        kept = FlowKey.from_record(SCHEMA_4F, make_record(src="10.1.1.1", dport=443))
        missing = FlowKey.from_record(SCHEMA_4F, make_record(src="1.2.3.4", dport=9999))
        assert coverage(tree, [kept, missing]) == 0.5
        assert coverage(tree, []) == 0.0
