"""Property-based tests (hypothesis) for the core data structures.

These check the algebraic invariants the paper's operators rely on:
conservation of counts under update/compaction, merge/diff consistency,
serialization round-trips, and the prefix/port-range hierarchy laws —
over randomly generated inputs rather than hand-picked cases.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FlowtreeConfig
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.core.policy import ChainBuilder, get_policy
from repro.core.serialization import from_bytes, to_bytes
from repro.features.ipaddr import IPv4Prefix
from repro.features.ports import PORT_BITS, PortRange
from repro.features.protocol import Protocol
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F

# -- strategies -----------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)
ports = st.integers(min_value=0, max_value=65535)
port_prefix_lengths = st.integers(min_value=0, max_value=PORT_BITS)


@st.composite
def ipv4_prefixes(draw):
    address = draw(addresses)
    length = draw(prefix_lengths)
    shift = 32 - length
    return IPv4Prefix((address >> shift) << shift if length else 0, length)


@st.composite
def port_ranges(draw):
    base = draw(ports)
    length = draw(port_prefix_lengths)
    shift = PORT_BITS - length
    return PortRange((base >> shift) << shift if length else 0, length)


@st.composite
def flow_keys_2f(draw):
    return FlowKey((draw(ipv4_prefixes()), draw(ipv4_prefixes())))


@st.composite
def specific_records(draw):
    class Record:
        src_ip = draw(addresses)
        dst_ip = draw(addresses)
        src_port = draw(ports)
        dst_port = draw(ports)
        protocol = draw(st.sampled_from([1, 6, 17]))
        packets = draw(st.integers(min_value=1, max_value=50))
        bytes = draw(st.integers(min_value=0, max_value=100_000))

    return Record()


record_batches = st.lists(specific_records(), min_size=1, max_size=120)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- feature hierarchy laws --------------------------------------------------------------


@given(prefix=ipv4_prefixes())
@relaxed
def test_prefix_generalize_preserves_containment(prefix):
    parent = prefix.generalize()
    assert parent.contains(prefix)
    assert parent.specificity <= prefix.specificity
    assert parent.cardinality >= prefix.cardinality


@given(prefix=ipv4_prefixes())
@relaxed
def test_prefix_wire_round_trip(prefix):
    assert IPv4Prefix.from_wire(prefix.to_wire()) == prefix


@given(a=ipv4_prefixes(), b=ipv4_prefixes())
@relaxed
def test_prefix_common_ancestor_contains_both(a, b):
    ancestor = a.common_ancestor(b)
    assert ancestor.contains(a)
    assert ancestor.contains(b)


@given(port_range=port_ranges())
@relaxed
def test_port_range_hierarchy_laws(port_range):
    parent = port_range.generalize()
    assert parent.contains(port_range)
    assert PortRange.from_wire(port_range.to_wire()) == port_range
    assert port_range.low <= port_range.high
    assert port_range.cardinality == port_range.high - port_range.low + 1


@given(a=ipv4_prefixes(), b=ipv4_prefixes())
@relaxed
def test_containment_is_antisymmetric_up_to_equality(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


# -- canonical chain laws -------------------------------------------------------------------


@given(key=flow_keys_2f(), policy_name=st.sampled_from(["round-robin", "field-order",
                                                        "reverse-field-order"]))
@relaxed
def test_chain_is_monotone_and_terminates(key, policy_name):
    builder = ChainBuilder.for_schema(SCHEMA_2F_SRC_DST, get_policy(policy_name), 4, 4)
    previous = key
    steps = 0
    for ancestor in builder.chain(key):
        assert ancestor.contains(previous)
        assert ancestor.specificity < previous.specificity
        previous = ancestor
        steps += 1
        assert steps <= 64
    assert previous.is_root or key.is_root


# -- Flowtree invariants -----------------------------------------------------------------------


@given(records=record_batches)
@relaxed
def test_flowtree_conserves_totals_and_respects_budget(records):
    tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=32, victim_batch=8))
    for record in records:
        tree.add_record(record)
    totals = tree.total_counters()
    assert totals.packets == sum(r.packets for r in records)
    assert totals.bytes == sum(r.bytes for r in records)
    assert totals.flows == len(records)
    assert len(tree) <= 32
    tree.validate()


@given(records=record_batches)
@relaxed
def test_flowtree_root_estimate_equals_total(records):
    tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64))
    for record in records:
        tree.add_record(record)
    assert tree.estimate(FlowKey.root(SCHEMA_4F)).value("packets") == sum(
        r.packets for r in records
    )


@given(records=record_batches)
@relaxed
def test_serialization_round_trip_property(records):
    tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=48))
    for record in records:
        tree.add_record(record)
    decoded = from_bytes(to_bytes(tree))
    assert decoded.total_counters() == tree.total_counters()
    assert set(decoded.keys()) == set(tree.keys())


@given(first=record_batches, second=record_batches)
@relaxed
def test_merge_totals_are_additive(first, second):
    a = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=48))
    b = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=48))
    for record in first:
        a.add_record(record)
    for record in second:
        b.add_record(record)
    merged = a.merged(b)
    assert merged.total_counters().packets == (
        a.total_counters().packets + b.total_counters().packets
    )
    assert len(merged) <= 48
    merged.validate()


@given(first=record_batches, second=record_batches)
@relaxed
def test_diff_then_merge_restores_totals(first, second):
    a = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
    b = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
    for record in first:
        a.add_record(record)
    for record in second:
        b.add_record(record)
    delta = b.diff(a)
    restored = a.merged(delta)
    assert restored.total_counters() == b.total_counters()


@given(records=record_batches)
@relaxed
def test_estimates_are_never_negative_for_fresh_trees(records):
    tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=32))
    for record in records:
        tree.add_record(record)
    for key in list(tree.keys())[:20]:
        assert tree.estimate(key).value("packets") >= 0
