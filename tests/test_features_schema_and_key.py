"""Tests for flow schemas and FlowKey lattice operations."""

import pytest

from helpers import key2, key4, make_record
from repro.core.errors import KeyError_
from repro.core.key import FlowKey, validate_same_arity
from repro.features.base import FeatureError
from repro.features.ipaddr import IPv4Prefix
from repro.features.ports import PortRange
from repro.features.protocol import Protocol
from repro.features.schema import (
    SCHEMA_1F_SRC,
    SCHEMA_2F_SRC_DST,
    SCHEMA_4F,
    SCHEMA_5F,
    FlowSchema,
    schema_by_name,
)


class TestFlowSchema:
    def test_builtin_schema_arities(self):
        assert len(SCHEMA_1F_SRC) == 1
        assert len(SCHEMA_2F_SRC_DST) == 2
        assert len(SCHEMA_4F) == 4
        assert len(SCHEMA_5F) == 5

    def test_schema_by_name(self):
        assert schema_by_name("4f") is SCHEMA_4F
        with pytest.raises(FeatureError):
            schema_by_name("no-such-schema")

    def test_features_of_record(self):
        record = make_record(src="10.0.0.1", dst="192.0.2.5", sport=1234, dport=443)
        features = SCHEMA_4F.features_of(record)
        assert features[0] == IPv4Prefix.host("10.0.0.1")
        assert features[1] == IPv4Prefix.host("192.0.2.5")
        assert features[2] == PortRange.single(1234)
        assert features[3] == PortRange.single(443)

    def test_five_feature_schema_includes_protocol(self):
        record = make_record(protocol=17)
        features = SCHEMA_5F.features_of(record)
        assert features[0] == Protocol.udp()

    def test_root_features_are_all_wildcards(self):
        assert all(feature.is_root for feature in SCHEMA_4F.root_features())

    def test_rejects_unknown_field(self):
        with pytest.raises(FeatureError):
            FlowSchema("bad", ["src_ip", "colour"])

    def test_rejects_duplicate_fields(self):
        with pytest.raises(FeatureError):
            FlowSchema("bad", ["src_ip", "src_ip"])

    def test_rejects_empty_schema(self):
        with pytest.raises(FeatureError):
            FlowSchema("bad", [])

    def test_equality_by_fields(self):
        clone = FlowSchema("other-name", ["src_ip", "dst_ip"])
        assert clone == SCHEMA_2F_SRC_DST
        assert hash(clone) == hash(SCHEMA_2F_SRC_DST)

    def test_feature_from_wire(self):
        feature = SCHEMA_4F.feature_from_wire(3, "443")
        assert feature == PortRange.single(443)


class TestFlowKey:
    def test_from_record_round_trip(self):
        record = make_record()
        key = FlowKey.from_record(SCHEMA_4F, record)
        assert key.arity == 4
        assert not key.is_root
        assert FlowKey.from_wire(SCHEMA_4F, key.to_wire()) == key

    def test_root_key(self):
        root = FlowKey.root(SCHEMA_4F)
        assert root.is_root
        assert root.specificity == 0
        assert root.cardinality == (2 ** 32) ** 2 * 65536 ** 2

    def test_specificity_vector(self):
        key = key4("10.0.0.0/8", "*", "80", "*")
        assert key.specificity_vector == (8, 0, 16, 0)
        assert key.specificity == 24

    def test_contains_per_feature(self):
        parent = key4("10.0.0.0/8", "*", "*", "*")
        child = key4("10.1.2.3", "192.0.2.1", "1234", "443")
        assert parent.contains(child)
        assert not child.contains(parent)

    def test_contains_requires_all_features(self):
        a = key4("10.0.0.0/8", "192.0.2.0/24", "*", "*")
        b = key4("10.1.0.0/16", "198.51.100.0/24", "*", "*")
        assert not a.contains(b)

    def test_contains_different_arity_is_false(self):
        assert not key2("10.0.0.0/8", "*").contains(key4("10.0.0.1", "1.2.3.4", "1", "2"))

    def test_generalize_feature(self):
        key = key4("10.0.0.0/8", "*", "*", "*")
        parent = key.generalize_feature(0)
        assert parent.specificity_vector == (7, 0, 0, 0)

    def test_generalize_feature_at_root_is_identity(self):
        key = key4("*", "*", "*", "*")
        assert key.generalize_feature(1) == key

    def test_generalize_feature_bad_index(self):
        with pytest.raises(KeyError_):
            key2("*", "*").generalize_feature(5)

    def test_generalize_to_vector(self):
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        projected = key.generalize_to_vector((8, 0, 0, 16))
        assert projected.specificity_vector == (8, 0, 0, 16)
        assert projected[0].to_wire() == "10.0.0.0/8"
        assert projected[3] == PortRange.single(443)

    def test_generalize_to_vector_rejects_specialization(self):
        with pytest.raises(KeyError_):
            key4("10.0.0.0/8", "*", "*", "*").generalize_to_vector((16, 0, 0, 0))

    def test_generalize_feature_to(self):
        key = key4("10.1.2.3", "*", "*", "*")
        assert key.generalize_feature_to(0, 24).specificity_vector == (24, 0, 0, 0)

    def test_common_ancestor(self):
        a = key2("10.0.0.1", "192.0.2.1")
        b = key2("10.0.0.2", "192.0.2.1")
        ancestor = a.common_ancestor(b)
        assert ancestor.contains(a) and ancestor.contains(b)
        assert ancestor[1] == IPv4Prefix.host("192.0.2.1")

    def test_common_ancestor_arity_mismatch(self):
        with pytest.raises(KeyError_):
            key2("*", "*").common_ancestor(key4("*", "*", "*", "*"))

    def test_equality_hash_and_ordering(self):
        a = key2("10.0.0.1", "192.0.2.1")
        b = key2("10.0.0.1", "192.0.2.1")
        assert a == b and hash(a) == hash(b)
        assert sorted([key2("9.0.0.0/8", "*"), a]) == sorted([a, key2("9.0.0.0/8", "*")])

    def test_pretty_rendering(self):
        assert key2("10.0.0.0/8", "*").pretty() == "(10.0.0.0/8, 0.0.0.0/0)"

    def test_iteration_and_indexing(self):
        key = key4("10.0.0.1", "192.0.2.1", "80", "443")
        assert len(key) == 4
        assert key[2] == PortRange.single(80)
        assert [feature.specificity for feature in key] == [32, 32, 16, 16]

    def test_empty_key_rejected(self):
        with pytest.raises(KeyError_):
            FlowKey(())

    def test_wire_arity_mismatch(self):
        with pytest.raises(KeyError_):
            FlowKey.from_wire(SCHEMA_4F, ("*", "*"))

    def test_validate_same_arity(self):
        assert validate_same_arity([key2("*", "*"), key2("10.0.0.0/8", "*")]) == 2
        with pytest.raises(KeyError_):
            validate_same_arity([key2("*", "*"), key4("*", "*", "*", "*")])
        with pytest.raises(KeyError_):
            validate_same_arity([])
