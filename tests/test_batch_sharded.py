"""Batched + sharded ingestion: equivalence with the per-record update path.

The contract of the fast paths is behavioural, not just statistical:

* ``Flowtree.add_batch`` over any record stream must serialize to exactly
  the same bytes as a per-record ``add_record`` loop when compaction is
  disabled — regardless of batch size — and must stay byte-identical when
  both paths cross a compaction boundary at the same point in the stream;
* ``ShardedFlowtree`` shards merged through the paper's merge operator
  must reproduce the single unsharded tree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SimpleRecord, make_record

from repro.core import Flowtree, FlowtreeConfig, ShardedFlowtree, shard_index, to_bytes
from repro.core.key import FlowKey
from repro.features.schema import SCHEMA_1F_SRC, SCHEMA_2F_SRC_DST, SCHEMA_4F


def _record(src_host, dst_host, sport, dport, packets):
    return SimpleRecord(
        src_ip=(10 << 24) | src_host,
        dst_ip=(192 << 24) | (168 << 16) | dst_host,
        src_port=1024 + sport,
        dst_port=dport,
        packets=packets,
        bytes=packets * 100,
    )


# Small domains force duplicates and shared chain prefixes.
records_strategy = st.lists(
    st.builds(
        _record,
        src_host=st.integers(0, 40),
        dst_host=st.integers(0, 6),
        sport=st.integers(0, 10),
        dport=st.sampled_from([53, 80, 443]),
        packets=st.integers(1, 5),
    ),
    min_size=1,
    max_size=150,
)


class TestAddBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(records=records_strategy, batch_size=st.sampled_from([0, 1, 7, 64, 10_000]))
    def test_byte_identical_to_add_loop_unbounded(self, records, batch_size):
        """Property: batch == loop, byte for byte, for any chunking."""
        loop_tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        for record in records:
            loop_tree.add_record(record)
        batch_tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        consumed = batch_tree.add_batch(records, batch_size=batch_size)
        assert consumed == len(records)
        assert to_bytes(batch_tree) == to_bytes(loop_tree)
        assert batch_tree.stats.updates == loop_tree.stats.updates == len(records)
        batch_tree.validate()

    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy)
    def test_byte_identical_on_2f_schema(self, records):
        loop_tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=None))
        for record in records:
            loop_tree.add_record(record)
        batch_tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=None))
        batch_tree.add_batch(records)
        assert to_bytes(batch_tree) == to_bytes(loop_tree)

    def test_byte_identical_across_compaction_boundary(self):
        """Both paths compact exactly once, at the same stream position.

        The stream holds 64 distinct keys against a 64-node budget; the
        +1 root means the budget is first exceeded by the final record, so
        the per-record loop's compaction fires on its last ``add`` — from
        the same fully-accumulated state the batched path compacts from.
        """
        config = FlowtreeConfig(max_nodes=64)
        records = []
        for i in range(63):
            # Every duplicate of keys 0..62 arrives before the final key.
            records.extend(
                make_record(src=f"10.1.{i}.1", dst="203.0.113.9", sport=2000 + i,
                            dport=443, packets=1 + i % 4)
                for _ in range(1 + i % 3)
            )
        records.append(make_record(src="10.9.9.9", dst="203.0.113.9", sport=4999, dport=443))

        loop_tree = Flowtree(SCHEMA_4F, config)
        for record in records:
            loop_tree.add_record(record)
        batch_tree = Flowtree(SCHEMA_4F, config)
        batch_tree.add_batch(records, batch_size=0)

        assert loop_tree.stats.compactions == 1
        assert batch_tree.stats.compactions == 1
        assert to_bytes(batch_tree) == to_bytes(loop_tree)
        batch_tree.validate()
        loop_tree.validate()

    def test_bounded_batch_respects_budget_and_totals(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=128, victim_batch=16)
        loop_tree = Flowtree(SCHEMA_4F, config)
        for record in packet_stream_small:
            loop_tree.add_record(record)
        batch_tree = Flowtree(SCHEMA_4F, config)
        batch_tree.add_batch(packet_stream_small, batch_size=512)
        batch_tree.validate()
        assert batch_tree.total_counters() == loop_tree.total_counters()
        # Compaction at batch boundaries may land between max_nodes and the
        # overshoot margin, but the final tree must be back under budget.
        assert len(batch_tree) <= config.max_nodes + max(config.victim_batch,
                                                         config.max_nodes // 16)

    def test_add_aggregated_matches_add_calls(self):
        items = [
            (FlowKey.from_record(SCHEMA_4F, make_record(src=f"10.2.{i}.1")), 3 * i + 1, 50 * i, 2)
            for i in range(20)
        ]
        direct = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        for key, packets, byte_count, flows in items:
            direct.add(key, packets=packets, bytes=byte_count, flows=flows)
        aggregated = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        aggregated.add_aggregated(items)
        assert to_bytes(aggregated) == to_bytes(direct)

    def test_signature_matches_key_identity(self):
        a = make_record(src="10.0.0.1", sport=1111)
        b = make_record(src="10.0.0.1", sport=1111, packets=9, bytes=9_999)
        c = make_record(src="10.0.0.2", sport=1111)
        assert SCHEMA_4F.signature_of(a) == SCHEMA_4F.signature_of(b)
        assert SCHEMA_4F.signature_of(a) != SCHEMA_4F.signature_of(c)
        assert (SCHEMA_4F.signature_of(a) == SCHEMA_4F.signature_of(b)) == (
            FlowKey.from_record(SCHEMA_4F, a) == FlowKey.from_record(SCHEMA_4F, b)
        )
        # Single-field schemas give a bare value, still usable as a dict key.
        assert SCHEMA_1F_SRC.signature_of(a) == a.src_ip


class TestShardedFlowtree:
    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy, num_shards=st.sampled_from([1, 2, 4, 7]))
    def test_merge_equivalence_against_unsharded(self, records, num_shards):
        """Property: merging the shards reproduces the single tree exactly."""
        single = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        for record in records:
            single.add_record(record)
        sharded = ShardedFlowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_shards=num_shards
        )
        consumed = sharded.add_batch(records, batch_size=32)
        assert consumed == len(records)
        sharded.validate()
        assert to_bytes(sharded.merged_tree()) == to_bytes(single)
        assert sharded.total_counters() == single.total_counters()

    def test_bounded_shards_split_the_budget(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=256)
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=4)
        sharded.add_batch(packet_stream_small)
        for shard in sharded.shards:
            assert shard.config.max_nodes == 64
            assert len(shard) <= 64 + max(shard.config.victim_batch, 4)
        merged = sharded.merged_tree()
        assert len(merged) <= config.max_nodes
        assert merged.total_counters() == sharded.total_counters()

    def test_shard_placement_is_deterministic_and_total(self, packet_stream_small):
        keys = {FlowKey.from_record(SCHEMA_4F, p) for p in packet_stream_small[:500]}
        for key in keys:
            index = shard_index(key, 4)
            assert 0 <= index < 4
            assert index == shard_index(key, 4)
        # A real stream must not collapse into one shard.
        assert len({shard_index(key, 4) for key in keys}) == 4

    def test_estimate_sums_over_shards(self, packet_stream_small):
        single = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        single.add_records(packet_stream_small)
        sharded = ShardedFlowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_shards=4)
        sharded.add_batch(packet_stream_small)
        root = FlowKey.from_wire(SCHEMA_4F, ("*", "*", "*", "*"))
        assert sharded.estimate(root).counters == single.estimate(root).counters
        specific = FlowKey.from_record(SCHEMA_4F, packet_stream_small[0])
        assert sharded.estimate(specific).counters == single.estimate(specific).counters

    def test_add_record_and_add_match_batch(self, packet_stream_small):
        by_batch = ShardedFlowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_shards=3)
        by_batch.add_batch(packet_stream_small)
        by_record = ShardedFlowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_shards=3)
        assert by_record.add_records(packet_stream_small) == len(packet_stream_small)
        assert to_bytes(by_record.merged_tree()) == to_bytes(by_batch.merged_tree())


class TestDaemonBatchedReplay:
    def test_batched_daemon_exports_identical_summaries(self, packet_stream_small):
        from repro.distributed import FlowtreeDaemon, SimulatedTransport

        def run(batch_size):
            transport = SimulatedTransport()
            daemon = FlowtreeDaemon(
                site="s", schema=SCHEMA_4F, transport=transport,
                bin_width=5.0, config=FlowtreeConfig(max_nodes=None),
            )
            daemon.consume_records(packet_stream_small, batch_size=batch_size)
            daemon.flush()
            return daemon.stats, [m.payload for _, m in transport.receive("collector")]

        # Per-record vs batched must agree on accounting and exported bytes.
        loop_stats, loop_payloads = run(batch_size=0)
        batch_stats, batch_payloads = run(batch_size=100)
        assert batch_stats.records_consumed == loop_stats.records_consumed
        assert batch_stats.bins_exported == loop_stats.bins_exported
        assert batch_stats.late_records == loop_stats.late_records
        assert batch_payloads == loop_payloads
