"""Tests for IPv4/IPv6 prefix features."""

import pytest

from repro.features.base import FeatureError, ParseError
from repro.features.ipaddr import (
    IPv4Prefix,
    IPv6Prefix,
    int_to_ipv4,
    int_to_ipv6,
    ipv4_to_int,
    ipv6_to_int,
    parse_prefix,
)


class TestIPv4TextConversion:
    def test_round_trip_basic(self):
        assert int_to_ipv4(ipv4_to_int("192.168.1.1")) == "192.168.1.1"

    def test_zero_and_broadcast(self):
        assert ipv4_to_int("0.0.0.0") == 0
        assert ipv4_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_rejects_octet_overflow(self):
        with pytest.raises(ParseError):
            ipv4_to_int("1.2.3.256")

    def test_rejects_wrong_arity(self):
        with pytest.raises(ParseError):
            ipv4_to_int("1.2.3")

    def test_rejects_leading_zeros(self):
        with pytest.raises(ParseError):
            ipv4_to_int("01.2.3.4")

    def test_rejects_non_numeric(self):
        with pytest.raises(ParseError):
            ipv4_to_int("a.b.c.d")


class TestIPv6TextConversion:
    def test_round_trip_compressed(self):
        value = ipv6_to_int("2001:db8::1")
        assert int_to_ipv6(value) == "2001:db8::1"

    def test_full_form(self):
        assert ipv6_to_int("0:0:0:0:0:0:0:1") == 1

    def test_embedded_ipv4(self):
        assert ipv6_to_int("::ffff:192.0.2.1") == (0xFFFF << 32) | ipv4_to_int("192.0.2.1")

    def test_rejects_double_compression(self):
        with pytest.raises(ParseError):
            ipv6_to_int("2001::db8::1")

    def test_rejects_too_many_groups(self):
        with pytest.raises(ParseError):
            ipv6_to_int("1:2:3:4:5:6:7:8:9")


class TestIPv4Prefix:
    def test_host_prefix_properties(self):
        prefix = IPv4Prefix.host("10.1.2.3")
        assert prefix.length == 32
        assert prefix.is_host
        assert not prefix.is_root
        assert prefix.cardinality == 1
        assert prefix.specificity == 32

    def test_rejects_host_bits_set(self):
        with pytest.raises(FeatureError):
            IPv4Prefix(ipv4_to_int("10.0.0.1"), 24)

    def test_rejects_bad_length(self):
        with pytest.raises(FeatureError):
            IPv4Prefix(0, 33)

    def test_generalize_one_step(self):
        prefix = IPv4Prefix(ipv4_to_int("10.0.0.0"), 24)
        assert prefix.generalize().to_wire() == "10.0.0.0/23"

    def test_generalize_clamps_at_root(self):
        root = IPv4Prefix.root()
        assert root.generalize() == root

    def test_generalize_to(self):
        prefix = IPv4Prefix.host("10.1.2.3")
        assert prefix.generalize_to(8).to_wire() == "10.0.0.0/8"

    def test_generalize_to_rejects_specialization(self):
        with pytest.raises(FeatureError):
            IPv4Prefix(ipv4_to_int("10.0.0.0"), 8).generalize_to(16)

    def test_contains_nested_prefixes(self):
        outer = IPv4Prefix(ipv4_to_int("10.0.0.0"), 8)
        inner = IPv4Prefix(ipv4_to_int("10.99.0.0"), 16)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_is_reflexive(self):
        prefix = IPv4Prefix(ipv4_to_int("172.16.0.0"), 12)
        assert prefix.contains(prefix)

    def test_contains_rejects_other_types(self):
        assert not IPv4Prefix.root().contains(IPv6Prefix.root())

    def test_contains_address(self):
        prefix = IPv4Prefix(ipv4_to_int("192.0.2.0"), 24)
        assert prefix.contains_address(ipv4_to_int("192.0.2.200"))
        assert not prefix.contains_address(ipv4_to_int("192.0.3.1"))

    def test_first_last_address(self):
        prefix = IPv4Prefix(ipv4_to_int("192.0.2.0"), 24)
        assert int_to_ipv4(prefix.first_address) == "192.0.2.0"
        assert int_to_ipv4(prefix.last_address) == "192.0.2.255"

    def test_child_left_and_right(self):
        prefix = IPv4Prefix(ipv4_to_int("192.0.2.0"), 24)
        assert prefix.child(0).to_wire() == "192.0.2.0/25"
        assert prefix.child(1).to_wire() == "192.0.2.128/25"

    def test_child_of_host_raises(self):
        with pytest.raises(FeatureError):
            IPv4Prefix.host("1.1.1.1").child(0)

    def test_subnets_enumeration(self):
        prefix = IPv4Prefix(ipv4_to_int("10.0.0.0"), 30)
        hosts = list(prefix.subnets(32))
        assert len(hosts) == 4
        assert hosts[0].to_wire() == "10.0.0.0/32"
        assert hosts[-1].to_wire() == "10.0.0.3/32"

    def test_common_ancestor(self):
        a = IPv4Prefix.host("10.0.0.1")
        b = IPv4Prefix.host("10.0.0.2")
        ancestor = a.common_ancestor(b)
        assert ancestor.contains(a) and ancestor.contains(b)
        assert ancestor.length == 30

    def test_ancestors_end_at_root(self):
        chain = list(IPv4Prefix(ipv4_to_int("10.0.0.0"), 8).ancestors())
        assert len(chain) == 8
        assert chain[-1].is_root

    def test_equality_and_hash(self):
        a = IPv4Prefix(ipv4_to_int("10.0.0.0"), 8)
        b = IPv4Prefix(ipv4_to_int("10.0.0.0"), 8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != IPv4Prefix(ipv4_to_int("11.0.0.0"), 8)

    def test_wire_round_trip(self):
        prefix = IPv4Prefix(ipv4_to_int("203.0.112.0"), 22)
        assert IPv4Prefix.from_wire(prefix.to_wire()) == prefix

    def test_repr_and_str(self):
        prefix = IPv4Prefix(ipv4_to_int("10.0.0.0"), 8)
        assert "10.0.0.0/8" in repr(prefix)
        assert str(prefix) == "10.0.0.0/8"


class TestParsePrefix:
    def test_bare_address_becomes_host(self):
        assert parse_prefix("10.0.0.1").length == 32

    def test_wildcard_becomes_root(self):
        assert parse_prefix("*").is_root

    def test_masks_host_bits_when_parsing(self):
        assert parse_prefix("10.0.0.1/24").to_wire() == "10.0.0.0/24"

    def test_ipv6_autodetection(self):
        prefix = parse_prefix("2001:db8::/32")
        assert isinstance(prefix, IPv6Prefix)
        assert prefix.length == 32

    def test_rejects_bad_length(self):
        with pytest.raises(ParseError):
            parse_prefix("10.0.0.0/abc")


class TestIPv6Prefix:
    def test_width_and_cardinality(self):
        prefix = IPv6Prefix(ipv6_to_int("2001:db8::") >> 96 << 96, 32)
        assert prefix.width == 128
        assert prefix.cardinality == 1 << 96

    def test_generalize_and_contains(self):
        host = IPv6Prefix.host("2001:db8::1")
        parent = host.generalize_to(64)
        assert parent.contains(host)
        assert parent.length == 64
