"""Chaos soak: seeded fault plans against a live, supervised TCP deployment.

The headline robustness claim: with frame drops, wire corruption,
duplicates, a collector kill and a store commit failure all armed on a
seeded :class:`FaultPlan`, a supervised two-collector TCP deployment must
*converge to the byte-identical answer* of a fault-free run — exactly-once
ingestion survives every injected failure once the supervisor heals the
system and the plan goes quiet (every fault is ``max_fires``-bounded).

Wall-clock is bounded: each soak run polls a convergence predicate under a
hard deadline, so a hang is a test failure rather than a stuck CI job (the
``chaos`` CI job adds an outer ``timeout`` on top).

The second half pins graceful query degradation: ``on_unavailable="raise"``
turns a dead collector into a :class:`QueryError`, ``"partial"`` returns
the reachable sites' totals with the dead collector named in
``unavailable_collectors``.
"""

import time

import pytest

from helpers import make_timed_record
from repro.core.errors import QueryError
from repro.core.key import FlowKey
from repro.core.serialization import to_bytes
from repro.distributed import (
    FAULT_COLLECTOR_KILL,
    FAULT_FRAME_CORRUPT,
    FAULT_FRAME_DELAY,
    FAULT_FRAME_DROP,
    FAULT_FRAME_DUPLICATE,
    FAULT_STORE_COMMIT,
    Deployment,
    FaultPlan,
    NetConfig,
    SupervisorConfig,
)
from repro.distributed.messages import QueryRequest
from repro.features.schema import SCHEMA_2F_SRC_DST

SITES = ["nyc", "lax", "fra", "sin"]
BIN_WIDTH = 60.0
BINS = 3
CONVERGE_TIMEOUT = 90.0

KEYS = [
    FlowKey.from_wire(SCHEMA_2F_SRC_DST, wire)
    for wire in (("10.0.1.0/24", "*"), ("*", "*"), ("10.0.2.3", "192.168.1.3"))
]


def _records(count=240):
    return [
        make_timed_record(
            timestamp=(i % BINS) * BIN_WIDTH,
            src=f"10.0.{i % 4}.{i % 250 or 1}",
            dst=f"192.168.1.{i % 200 or 1}",
            packets=1 + i % 5,
        )
        for i in range(count)
    ]


def _build(transport, faults=None, net=None, **kwargs):
    deployment = Deployment(
        SCHEMA_2F_SRC_DST,
        SITES,
        bin_width=BIN_WIDTH,
        transport=transport,
        collectors=2,
        faults=faults,
        net=net,
        **kwargs,
    )
    for name in deployment.site_names:
        deployment.attach_records(name, _records())
    return deployment


def _chaos_plan(seed):
    """Every fault class armed, all bounded so the plan goes quiet.

    The deterministic faults stagger their ``after`` offsets by seed so
    different seeds hit different frames/ingests; the delay fault stays
    probabilistic (its firing pattern is the per-seed dice roll).
    """
    plan = FaultPlan(seed=seed)
    plan.arm(FAULT_FRAME_DROP, after=seed, max_fires=1)
    plan.arm(FAULT_FRAME_CORRUPT, after=seed + 2, max_fires=1)
    plan.arm(FAULT_FRAME_DUPLICATE, after=seed + 4, max_fires=1)
    plan.arm(FAULT_FRAME_DELAY, probability=0.25, max_fires=3)
    plan.arm(FAULT_COLLECTOR_KILL, after=1, max_fires=1)
    plan.arm(FAULT_STORE_COMMIT, after=3, max_fires=1)
    return plan


@pytest.fixture(scope="module")
def baseline():
    """The fault-free answer, captured as plain data: per-site bin bytes,
    query results and ingest counters."""
    with _build("memory") as deployment:
        deployment.run()
        bins = {}
        for site in deployment.site_names:
            series = deployment.collector_for(site).site_series(site)
            bins[site] = {
                index: to_bytes(series.tree(index)) for index in series.bin_indices()
            }
        return {
            "messages": sum(c.messages_processed for c in deployment.collectors),
            "bytes": sum(c.bytes_received for c in deployment.collectors),
            "bins": bins,
            "estimates": deployment.query_engine.estimate_many(KEYS),
        }


class TestChaosSoak:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_soak_converges_byte_identically(self, seed, baseline):
        plan = _chaos_plan(seed)
        net = NetConfig(backoff_base=0.02, backoff_max=0.25, drain_timeout=60.0)
        with _build("tcp", faults=plan, net=net) as deployment:
            supervisor = deployment.supervisor(SupervisorConfig(interval=0.05))
            supervisor.start()
            names = deployment.site_names
            try:
                for name in names[:2]:
                    deployment.site(name).replay()
                # an operator-visible outage on top of the fault plan: the
                # supervisor must rebind the dead listener on its own
                deployment.servers[0].stop()
                for name in names[2:]:
                    deployment.site(name).replay()

                deadline = time.monotonic() + CONVERGE_TIMEOUT
                converged = False
                while time.monotonic() < deadline:
                    converged = (
                        supervisor.all_healthy
                        and all(server.running for server in deployment.servers)
                        and sum(c.messages_processed for c in deployment.collectors)
                        >= baseline["messages"]
                        and all(
                            deployment.site_transport(n).outstanding == 0 for n in names
                        )
                        and all(c.pending_backlog == 0 for c in deployment.collectors)
                    )
                    if converged:
                        break
                    time.sleep(0.02)
                assert converged, (
                    f"seed {seed}: no convergence within {CONVERGE_TIMEOUT}s: "
                    f"{supervisor.health_snapshot()} faults={plan.snapshot()}"
                )
            finally:
                supervisor.stop()

            # the plan actually exercised every deterministic fault and went quiet
            assert plan.fires(FAULT_FRAME_DROP) == 1
            assert plan.fires(FAULT_FRAME_CORRUPT) == 1
            assert plan.fires(FAULT_FRAME_DUPLICATE) == 1
            assert plan.fires(FAULT_COLLECTOR_KILL) == 1
            assert plan.fires(FAULT_STORE_COMMIT) == 1
            restarts = sum(
                h["restarts"] for h in supervisor.health_snapshot().values()
            )
            assert restarts >= 2  # the killed collector + the stopped server

            # exactly-once: counters and every bin byte-identical to fault-free
            assert (
                sum(c.messages_processed for c in deployment.collectors)
                == baseline["messages"]
            )
            assert (
                sum(c.bytes_received for c in deployment.collectors)
                == baseline["bytes"]
            )
            for site in names:
                series = deployment.collector_for(site).site_series(site)
                assert series.bin_indices() == sorted(baseline["bins"][site])
                for index, blob in baseline["bins"][site].items():
                    assert to_bytes(series.tree(index)) == blob, (
                        f"seed {seed}: bin {index} of {site} diverged"
                    )
            assert deployment.query_engine.estimate_many(KEYS) == baseline["estimates"]

    def test_soak_is_reproducible_for_a_fixed_seed(self):
        """Two plans with the same seed agree on the delay seam's dice rolls."""
        first, second = _chaos_plan(7), _chaos_plan(7)
        rolls = lambda plan: [  # noqa: E731
            plan.should_fire(FAULT_FRAME_DELAY) for _ in range(20)
        ]
        assert rolls(first) == rolls(second)


class TestGracefulDegradation:
    def test_partial_mode_returns_reachable_totals(self, baseline):
        with _build("memory", on_unavailable="partial", query_timeout=5.0) as deployment:
            deployment.run()
            engine = deployment.query_engine
            dead = deployment.collectors[0]
            dead.kill("outage")

            result = engine.estimate_many_detailed(KEYS)
            assert result.partial
            assert result.unavailable == (dead.name,)
            live_sites = {
                site
                for site in deployment.site_names
                if deployment.collector_for(site) is not dead
            }
            assert set(result.per_site) == live_sites
            for key in KEYS:
                assert result.totals[key] == sum(
                    result.per_site[site][key] for site in live_sites
                )
            full_totals, _ = baseline["estimates"]
            assert result.totals[KEYS[1]] < full_totals[KEYS[1]]

            response = engine.execute(QueryRequest(key_wire=("*", "*")))
            assert response.partial
            assert not response.exact
            assert response.unavailable_collectors == (dead.name,)
            assert response.total == result.totals[KEYS[1]]

            dead.revive()  # healed: the full answer comes back
            healed = engine.estimate_many_detailed(KEYS)
            assert not healed.partial
            assert (healed.totals, healed.per_site) == baseline["estimates"]

    def test_raise_mode_surfaces_the_outage(self):
        with _build("memory") as deployment:  # on_unavailable defaults to "raise"
            deployment.run()
            deployment.collectors[1].kill("outage")
            with pytest.raises(QueryError, match="unavailable"):
                deployment.query_engine.estimate_many(KEYS)
            deployment.collectors[1].revive()  # close() refuses a dead collector

    def test_query_timeout_degrades_a_wedged_collector(self):
        with _build("memory", on_unavailable="partial", query_timeout=0.2) as deployment:
            deployment.run()
            wedged = deployment.collectors[0]

            def hang(*args, **kwargs):
                time.sleep(5.0)
                raise AssertionError("the gather must not wait for this")

            wedged.estimate_many = hang
            started = time.monotonic()
            result = deployment.query_engine.estimate_many_detailed(KEYS)
            assert time.monotonic() - started < 2.0  # bounded by the timeout
            assert result.unavailable == (wedged.name,)
            assert result.partial
