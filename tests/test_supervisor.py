"""Tests for collector supervision (:mod:`repro.distributed.supervisor`).

One supervision pass must heal a killed collector (``revive`` for memory
stores, ``reopen`` for durable ones), rebind a stopped TCP server, poll
the backlog so nothing acked is lost, and report every outcome in the
health snapshot.  ``max_restarts`` caps the healing; the background
heartbeat thread runs passes until stopped.  The chaos soak that drives
all of this under a live fault plan is in ``tests/test_chaos.py``.
"""

import time

import pytest

from helpers import make_timed_record
from repro.core.config import FlowtreeConfig
from repro.core.errors import ConfigurationError, DaemonError
from repro.distributed import (
    Collector,
    CollectorConfig,
    Deployment,
    FlowtreeDaemon,
    SimulatedTransport,
    Supervisor,
    SupervisorConfig,
)
from repro.features.schema import SCHEMA_2F_SRC_DST


def _wire(tmp_path=None, count=60, bins=2):
    """A collector (memory or durable) with exported summaries pending."""
    transport = SimulatedTransport()
    config = None
    if tmp_path is not None:
        config = CollectorConfig(
            bin_width=10.0, store="file", store_path=str(tmp_path / "store")
        )
    collector = Collector(
        SCHEMA_2F_SRC_DST, transport, bin_width=10.0, config=config
    )
    daemon = FlowtreeDaemon(
        "edge-1", SCHEMA_2F_SRC_DST, transport,
        collector_name=collector.name, bin_width=10.0,
        config=FlowtreeConfig(max_nodes=500),
    )
    for i in range(count):
        daemon.consume_record(
            make_timed_record(timestamp=(i % bins) * 10.0, src=f"10.0.0.{i % 5 or 1}")
        )
    daemon.flush()
    return collector


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="interval"):
            SupervisorConfig(interval=0.0)
        with pytest.raises(ConfigurationError, match="max_restarts"):
            SupervisorConfig(max_restarts=-1)

    def test_needs_a_collector(self):
        with pytest.raises(ConfigurationError, match="at least one collector"):
            Supervisor([])

    def test_server_count_must_match(self):
        collector = _wire()
        with pytest.raises(ConfigurationError, match="one server per collector"):
            Supervisor([collector], servers=[object(), object()])


class TestSupervisionPass:
    def test_check_polls_and_reports_healthy(self):
        collector = _wire()
        supervisor = Supervisor(collector)
        snapshot = supervisor.check()[collector.name]
        assert snapshot["healthy"] is True
        assert snapshot["server_running"] is None  # no TCP server attached
        assert snapshot["restarts"] == 0
        assert snapshot["last_error"] is None
        assert snapshot["sites"] == 1
        assert snapshot["messages_processed"] == collector.messages_processed > 0
        assert snapshot["pending_backlog"] == 0
        assert supervisor.all_healthy

    def test_check_revives_killed_memory_collector(self):
        collector = _wire()
        collector.poll()
        collector.kill("crashed")
        supervisor = Supervisor(collector)
        snapshot = supervisor.check()[collector.name]
        assert collector.healthy
        assert snapshot["healthy"] is True
        assert snapshot["restarts"] == 1

    def test_check_reopens_killed_durable_collector(self, tmp_path):
        collector = _wire(tmp_path)
        collector.poll()
        before = collector.site_series("edge-1").bin_indices()
        collector.kill("crashed")
        supervisor = Supervisor(collector)
        snapshot = supervisor.check()[collector.name]
        assert collector.healthy
        assert snapshot["restarts"] == 1
        # reopen rebuilt state from the durable backend
        assert collector.site_series("edge-1").bin_indices() == before
        collector.close()

    def test_poll_on_check_drains_backlog(self):
        collector = _wire()
        supervisor = Supervisor(collector)  # poll_on_check defaults on
        supervisor.check()
        assert collector.messages_processed > 0
        assert collector.pending_backlog == 0

    def test_poll_on_check_can_be_disabled(self):
        collector = _wire()
        supervisor = Supervisor(
            collector, config=SupervisorConfig(poll_on_check=False)
        )
        supervisor.check()
        assert collector.messages_processed == 0

    def test_max_restarts_caps_healing_and_keeps_reporting(self):
        collector = _wire()
        collector.kill("crash 1")
        supervisor = Supervisor(collector, config=SupervisorConfig(max_restarts=1))
        supervisor.check()
        assert collector.healthy  # first heal allowed

        collector.kill("crash 2")
        snapshot = supervisor.check()[collector.name]
        assert not collector.healthy  # cap reached: left down
        assert snapshot["healthy"] is False
        assert snapshot["restarts"] == 1
        assert snapshot["consecutive_failures"] == 1
        assert "crash 2" in snapshot["last_error"]
        assert not supervisor.all_healthy

        snapshot = supervisor.check()[collector.name]
        assert snapshot["consecutive_failures"] == 2  # still reporting

    def test_failure_then_recovery_clears_the_error(self):
        collector = _wire()
        collector.kill("flap")
        supervisor = Supervisor(collector, config=SupervisorConfig(max_restarts=0))
        snapshot = supervisor.check()[collector.name]
        assert snapshot["healthy"] is False
        collector.revive()  # operator intervention
        snapshot = supervisor.check()[collector.name]
        assert snapshot["healthy"] is True
        assert snapshot["last_error"] is None
        assert snapshot["consecutive_failures"] == 0


class TestServerRebind:
    def test_check_restarts_stopped_server(self):
        with Deployment(
            SCHEMA_2F_SRC_DST, ["nyc", "lax"], bin_width=60.0, transport="tcp"
        ) as deployment:
            supervisor = Supervisor.for_deployment(deployment)
            server = deployment.servers[0]
            server.stop()
            assert not server.running
            snapshot = supervisor.check()
            assert server.running
            name = deployment.collectors[0].name
            assert snapshot[name]["server_running"] is True
            assert snapshot[name]["restarts"] == 1


class TestBackgroundHeartbeat:
    def test_start_runs_checks_until_stop(self):
        collector = _wire()
        collector.kill("crashed")
        supervisor = Supervisor(collector, config=SupervisorConfig(interval=0.01))
        with supervisor.start():
            assert supervisor.running
            deadline = time.monotonic() + 5.0
            while not collector.healthy and time.monotonic() < deadline:
                time.sleep(0.01)
        assert collector.healthy
        assert not supervisor.running
        assert collector.messages_processed > 0  # heartbeat polls drained the inbox

    def test_start_is_idempotent_and_stop_is_safe_twice(self):
        supervisor = Supervisor(_wire(), config=SupervisorConfig(interval=0.01))
        supervisor.start()
        supervisor.start()
        supervisor.stop()
        supervisor.stop()
        assert not supervisor.running


class TestDeploymentIntegration:
    def test_deployment_supervisor_is_cached(self):
        with Deployment(SCHEMA_2F_SRC_DST, ["a", "b"], bin_width=60.0) as deployment:
            supervisor = deployment.supervisor()
            assert deployment.supervisor() is supervisor
            assert supervisor.collectors == deployment.collectors
            with pytest.raises(DaemonError, match="different"):
                deployment.supervisor(SupervisorConfig(interval=9.0))

    def test_close_stops_background_supervisor(self):
        deployment = Deployment(SCHEMA_2F_SRC_DST, ["a"], bin_width=60.0)
        supervisor = deployment.supervisor(SupervisorConfig(interval=0.01))
        supervisor.start()
        deployment.close()
        assert not supervisor.running
