"""Tests for the baseline summaries (exact, Space-Saving, HHH, RHHH, Count-Min)."""

import pytest

from helpers import key2, make_record
from repro.baselines import (
    CountMinSketch,
    ExactAggregator,
    FullUpdateHHH,
    HierarchicalCountMin,
    RandomizedHHH,
    SpaceSavingCounter,
    SpaceSavingSummary,
)
from repro.core.errors import ConfigurationError
from repro.core.key import FlowKey
from repro.features.schema import SCHEMA_2F_SRC_DST
from repro.traces import CaidaLikeTraceGenerator


@pytest.fixture(scope="module")
def trace():
    generator = CaidaLikeTraceGenerator(seed=77, flow_population=3_000)
    return list(generator.packets(8_000))


@pytest.fixture(scope="module")
def truth(trace):
    aggregator = ExactAggregator(SCHEMA_2F_SRC_DST)
    aggregator.add_records(trace)
    return aggregator


class TestExactAggregator:
    def test_totals_and_flow_counts(self, trace, truth):
        assert truth.total() == len(trace)
        counts = truth.flow_counts()
        assert sum(counts.values()) == len(trace)
        assert truth.distinct_flows() == len(counts) == truth.node_count()

    def test_specific_flow_estimate_is_exact(self, truth):
        key, count = truth.heavy_hitters(1)[0]
        assert truth.estimate(key) == count

    def test_aggregate_estimate_scans_contained_flows(self):
        aggregator = ExactAggregator(SCHEMA_2F_SRC_DST)
        aggregator.add_record(make_record(src="10.0.0.1", packets=5))
        aggregator.add_record(make_record(src="10.0.0.2", packets=7))
        aggregator.add_record(make_record(src="192.0.2.1", packets=11))
        assert aggregator.estimate(key2("10.0.0.0/8", "*")) == 12
        assert aggregator.estimate(key2("*", "*")) == 23

    def test_popularity_map_matches_individual_estimates(self, truth):
        keys = [key2("10.0.0.0/8", "*"), key2("192.0.0.0/8", "*"), key2("*", "*")]
        mapped = truth.popularity_map(keys)
        for key in keys:
            assert mapped[key] == truth.estimate(key)

    def test_heavy_keys_above_fraction(self, truth):
        heavy = truth.heavy_keys_above_fraction(0.001)
        threshold = truth.total() * 0.001
        assert all(count >= threshold for _, count in heavy)

    def test_add_key_direct(self):
        aggregator = ExactAggregator(SCHEMA_2F_SRC_DST)
        aggregator.add_key(key2("10.0.0.1", "192.0.2.1"), packets=3, bytes=300)
        assert aggregator.estimate(key2("10.0.0.1", "192.0.2.1")) == 3
        assert aggregator.estimate(key2("10.0.0.1", "192.0.2.1"), metric="bytes") == 300


class TestSpaceSaving:
    def test_counter_within_capacity_is_exact(self):
        counter = SpaceSavingCounter(10)
        for _ in range(5):
            counter.add("a")
        counter.add("b", 3)
        assert counter.estimate("a") == 5
        assert counter.guaranteed("a") == 5
        assert counter.estimate("missing") == 0
        assert len(counter) == 2

    def test_counter_eviction_overestimates(self):
        counter = SpaceSavingCounter(2)
        counter.add("a", 10)
        counter.add("b", 5)
        counter.add("c", 1)  # evicts b, inherits 5
        assert "b" not in counter
        assert counter.estimate("c") == 6
        assert counter.guaranteed("c") == 1

    def test_counter_never_underestimates(self, trace):
        from collections import Counter as PyCounter

        exact = PyCounter((p.src_ip, p.dst_ip) for p in trace)
        counter = SpaceSavingCounter(500)
        for packet in trace:
            counter.add((packet.src_ip, packet.dst_ip))
        for key, estimate in counter.items():
            assert estimate >= exact[key]

    def test_counter_top_and_heavy_hitters(self):
        counter = SpaceSavingCounter(10)
        for i, weight in enumerate([100, 50, 1]):
            counter.add(f"k{i}", weight)
        assert [key for key, _ in counter.top(2)] == ["k0", "k1"]
        assert dict(counter.heavy_hitters(50)) == {"k0": 100, "k1": 50}

    def test_counter_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingCounter(0)

    def test_summary_tracks_heavy_flows(self, trace, truth):
        summary = SpaceSavingSummary(SCHEMA_2F_SRC_DST, capacity=1_000)
        summary.add_records(trace)
        assert summary.node_count() <= 1_000
        top_key, top_count = truth.heavy_hitters(1)[0]
        assert summary.estimate(top_key) >= top_count

    def test_summary_aggregate_query_sums_tracked_flows(self, trace):
        summary = SpaceSavingSummary(SCHEMA_2F_SRC_DST, capacity=2_000)
        summary.add_records(trace)
        aggregate = summary.estimate(key2("*", "*"))
        assert aggregate >= len(trace) * 0.9  # capacity large enough to track most traffic

    def test_summary_unknown_metric_returns_zero(self, trace):
        summary = SpaceSavingSummary(SCHEMA_2F_SRC_DST, capacity=100)
        summary.add_records(trace[:100])
        assert summary.estimate(key2("*", "*"), metric="bytes") == 0


class TestFullUpdateHHH:
    def test_heavy_flow_estimates_close_to_truth(self, trace, truth):
        hhh = FullUpdateHHH(SCHEMA_2F_SRC_DST, counters_per_level=800)
        hhh.add_records(trace)
        for key, count in truth.heavy_hitters(int(0.01 * len(trace)))[:5]:
            estimate = hhh.estimate(key)
            assert estimate >= count
            assert estimate <= count * 1.5 + 50

    def test_aggregate_levels_answered(self, trace, truth):
        hhh = FullUpdateHHH(SCHEMA_2F_SRC_DST, counters_per_level=800)
        hhh.add_records(trace)
        query = key2("*", "*")
        assert hhh.estimate(query) == len(trace)
        assert hhh.total() == len(trace)

    def test_hierarchical_heavy_hitters_discounting(self, trace):
        hhh = FullUpdateHHH(SCHEMA_2F_SRC_DST, counters_per_level=800)
        hhh.add_records(trace)
        threshold = int(0.02 * len(trace))
        results = hhh.hierarchical_heavy_hitters(threshold)
        assert results, "expected at least one hierarchical heavy hitter"
        assert all(count >= threshold for _, count in results)
        # The all-wildcard key should be discounted below raw total traffic.
        root_entries = [count for key, count in results if key.is_root]
        if root_entries:
            assert root_entries[0] < len(trace)

    def test_levels_and_node_count(self, trace):
        hhh = FullUpdateHHH(SCHEMA_2F_SRC_DST, counters_per_level=300)
        hhh.add_records(trace[:1_000])
        assert len(hhh.levels()) == 17  # 2 x (32/4) chain steps + root
        assert hhh.node_count() <= 300 * 17

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FullUpdateHHH(SCHEMA_2F_SRC_DST, counters_per_level=0)


class TestRandomizedHHH:
    def test_estimates_are_unbiased_in_scale(self, trace, truth):
        rhhh = RandomizedHHH(SCHEMA_2F_SRC_DST, counters_per_level=800, seed=5)
        rhhh.add_records(trace)
        root_estimate = rhhh.estimate(key2("*", "*"))
        assert root_estimate == pytest.approx(len(trace), rel=0.25)

    def test_heavy_flow_detection(self, trace, truth):
        rhhh = RandomizedHHH(SCHEMA_2F_SRC_DST, counters_per_level=800, seed=6)
        rhhh.add_records(trace)
        top_key, top_count = truth.heavy_hitters(1)[0]
        hitters = dict(rhhh.heavy_hitters(int(top_count * 0.3)))
        assert top_key in hitters

    def test_reproducible_with_seed(self, trace):
        a = RandomizedHHH(SCHEMA_2F_SRC_DST, counters_per_level=200, seed=9)
        b = RandomizedHHH(SCHEMA_2F_SRC_DST, counters_per_level=200, seed=9)
        a.add_records(trace[:2_000])
        b.add_records(trace[:2_000])
        assert a.estimate(key2("*", "*")) == b.estimate(key2("*", "*"))
        assert a.updates() == 2_000


class TestCountMin:
    def test_sketch_never_underestimates(self):
        sketch = CountMinSketch(width=256, depth=4)
        for i in range(1_000):
            sketch.add(f"key-{i % 50}")
        for i in range(50):
            assert sketch.estimate(f"key-{i}") >= 20

    def test_sketch_unknown_key_small(self):
        sketch = CountMinSketch(width=4_096, depth=4)
        for i in range(1_000):
            sketch.add(f"key-{i}")
        assert sketch.estimate("never-seen") <= 5

    def test_sketch_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=4, depth=0)

    def test_hierarchical_sketch_answers_all_levels(self, trace):
        sketch = HierarchicalCountMin(SCHEMA_2F_SRC_DST, width=2_048, depth=4)
        sketch.add_records(trace[:3_000])
        assert sketch.estimate(key2("*", "*")) >= 3_000
        aggregate = key2("10.0.0.0/8", "*")
        assert sketch.estimate(aggregate) >= 0
        assert sketch.node_count() == 2_048 * 4 * len(sketch.levels())
