"""Tests for FlowtreeConfig validation and node/counter primitives."""

import pytest

from helpers import key2
from repro.core.config import EXACT_CONFIG, PAPER_EVAL_CONFIG, FlowtreeConfig
from repro.core.errors import ConfigurationError
from repro.core.node import Counters, FlowtreeNode


class TestFlowtreeConfig:
    def test_defaults_match_paper_shape(self):
        config = FlowtreeConfig()
        assert config.max_nodes == 40_000
        assert config.policy == "round-robin"
        assert config.compaction_enabled

    def test_paper_eval_config(self):
        assert PAPER_EVAL_CONFIG.max_nodes == 40_000

    def test_exact_config_disables_compaction(self):
        assert EXACT_CONFIG.max_nodes is None
        assert not EXACT_CONFIG.compaction_enabled
        assert EXACT_CONFIG.target_nodes is None

    def test_target_nodes(self):
        config = FlowtreeConfig(max_nodes=1_000, target_fill=0.5)
        assert config.target_nodes == 500

    def test_target_nodes_floor(self):
        config = FlowtreeConfig(max_nodes=20, target_fill=0.1)
        assert config.target_nodes == 16

    def test_rejects_tiny_budget(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(max_nodes=4)

    def test_rejects_non_integer_budget(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(max_nodes=2.5)

    def test_rejects_bad_target_fill(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(target_fill=0.0)
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(target_fill=1.5)

    def test_rejects_bad_victim_batch(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(victim_batch=0)

    def test_rejects_negative_protection(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(protected_min_count=-1)

    def test_rejects_bad_strides(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(ip_stride=0)
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(ip_stride=40)
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(port_stride=17)

    def test_with_max_nodes_copy(self):
        config = FlowtreeConfig(max_nodes=1_000)
        bigger = config.with_max_nodes(2_000)
        assert bigger.max_nodes == 2_000
        assert config.max_nodes == 1_000

    def test_with_policy_copy(self):
        config = FlowtreeConfig()
        other = config.with_policy("field-order")
        assert other.policy == "field-order"
        assert config.policy == "round-robin"


class TestCounters:
    def test_add_and_subtract_in_place(self):
        a = Counters(10, 1_000, 2)
        a.add(Counters(5, 500, 1))
        assert a == Counters(15, 1_500, 3)
        a.subtract(Counters(20, 0, 0))
        assert a.packets == -5

    def test_operators_return_new_objects(self):
        a = Counters(1, 2, 3)
        b = Counters(4, 5, 6)
        assert a + b == Counters(5, 7, 9)
        assert b - a == Counters(3, 3, 3)
        assert a == Counters(1, 2, 3)  # unchanged

    def test_scaled_rounds(self):
        assert Counters(10, 100, 4).scaled(0.25) == Counters(2, 25, 1)
        assert Counters(3, 3, 3).scaled(0.5) == Counters(2, 2, 2)

    def test_copy_is_independent(self):
        a = Counters(1, 1, 1)
        b = a.copy()
        b.packets = 99
        assert a.packets == 1

    def test_is_zero(self):
        assert Counters().is_zero
        assert not Counters(packets=1).is_zero

    def test_weight_by_metric(self):
        counters = Counters(7, 700, 3)
        assert counters.weight("packets") == 7
        assert counters.weight("bytes") == 700
        assert counters.weight("flows") == 3
        with pytest.raises(ValueError):
            counters.weight("hops")


class TestFlowtreeNode:
    def test_attach_and_detach(self):
        parent = FlowtreeNode(key2("10.0.0.0/8", "*"))
        child = FlowtreeNode(key2("10.1.0.0/16", "*"))
        parent.attach_child(child)
        assert child.parent is parent
        assert not parent.is_leaf
        child.detach()
        assert child.parent is None
        assert parent.is_leaf

    def test_reattach_moves_between_parents(self):
        first = FlowtreeNode(key2("10.0.0.0/8", "*"))
        second = FlowtreeNode(key2("10.1.0.0/16", "*"))
        child = FlowtreeNode(key2("10.1.2.0/24", "*"))
        first.attach_child(child)
        second.attach_child(child)
        assert child.parent is second
        assert child.key not in first.children

    def test_depth(self):
        a = FlowtreeNode(key2("*", "*"))
        b = FlowtreeNode(key2("10.0.0.0/8", "*"))
        c = FlowtreeNode(key2("10.1.0.0/16", "*"))
        a.attach_child(b)
        b.attach_child(c)
        assert a.depth == 0
        assert c.depth == 2

    def test_iter_subtree_and_sum(self):
        root = FlowtreeNode(key2("*", "*"))
        mid = FlowtreeNode(key2("10.0.0.0/8", "*"))
        leaf = FlowtreeNode(key2("10.1.0.0/16", "*"))
        root.attach_child(mid)
        mid.attach_child(leaf)
        root.counters.packets = 1
        mid.counters.packets = 2
        leaf.counters.packets = 3
        keys = {node.key for node in root.iter_subtree()}
        assert len(keys) == 3
        assert root.subtree_counters().packets == 6
        assert mid.subtree_counters().packets == 5

    def test_repr_mentions_key_and_count(self):
        node = FlowtreeNode(key2("10.0.0.0/8", "*"))
        node.counters.packets = 42
        assert "10.0.0.0/8" in repr(node)
        assert "42" in repr(node)
