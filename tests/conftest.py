"""Shared fixtures for the Flowtree test suite.

Plain helpers (``SimpleRecord``, ``make_record``, ``key2``, ``key4``) live
in ``tests/helpers.py`` so test modules import them explicitly instead of
relying on the fragile top-level ``conftest`` module name.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import FlowtreeConfig
from repro.core.flowtree import Flowtree
from repro.features.ipaddr import ipv4_to_int
from repro.features.schema import SCHEMA_1F_SRC, SCHEMA_2F_SRC_DST, SCHEMA_4F, SCHEMA_5F
from repro.flows.records import FlowRecord, PacketRecord
from repro.traces import CaidaLikeTraceGenerator


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "allow_thread_exceptions: the test deliberately crashes a background "
        "thread; opt out of the uncaught-thread-exception sanitizer",
    )


@pytest.fixture(autouse=True)
def fail_on_uncaught_thread_exceptions(request):
    """Turn silent background-thread crashes into failures of the owning test.

    A daemon thread that dies of an uncaught exception otherwise just
    stops — the supervisor stops supervising, the site client stops
    sending — and the test passes on stale state.  This hook records
    every exception reaching :func:`threading.excepthook` while a test
    runs and fails that test by name.  Tests that crash a thread *on
    purpose* opt out with ``@pytest.mark.allow_thread_exceptions``.
    """
    if request.node.get_closest_marker("allow_thread_exceptions"):
        yield
        return
    failures = []
    previous = threading.excepthook

    def record(args):
        thread_name = args.thread.name if args.thread is not None else "<unknown>"
        failures.append(f"{thread_name}: {args.exc_type.__name__}: {args.exc_value}")
        previous(args)

    threading.excepthook = record
    try:
        yield
    finally:
        threading.excepthook = previous
    if failures:
        pytest.fail(
            "uncaught exception(s) in background thread(s):\n" + "\n".join(failures)
        )


@pytest.fixture
def schema_1f():
    return SCHEMA_1F_SRC


@pytest.fixture
def schema_2f():
    return SCHEMA_2F_SRC_DST


@pytest.fixture
def schema_4f():
    return SCHEMA_4F


@pytest.fixture
def schema_5f():
    return SCHEMA_5F


@pytest.fixture
def small_config():
    """A tight node budget so compaction is exercised by small streams."""
    return FlowtreeConfig(max_nodes=64, victim_batch=8)


@pytest.fixture
def unbounded_config():
    """No compaction: the tree keeps every distinct key (exact mode)."""
    return FlowtreeConfig(max_nodes=None)


@pytest.fixture
def empty_tree_4f(schema_4f):
    return Flowtree(schema_4f, FlowtreeConfig(max_nodes=1_000))


@pytest.fixture
def packet_stream_small():
    """A deterministic 5 000-packet CAIDA-like stream shared across tests."""
    generator = CaidaLikeTraceGenerator(seed=1234, flow_population=2_000)
    return list(generator.packets(5_000))


@pytest.fixture
def flow_records_small():
    """A handful of explicit flow records with known values."""
    return [
        FlowRecord(
            start_time=1000.0 + i,
            end_time=1001.0 + i,
            src_ip=ipv4_to_int("10.0.0.1") + (i % 3),
            dst_ip=ipv4_to_int("192.0.2.10"),
            src_port=40_000 + i,
            dst_port=443 if i % 2 == 0 else 80,
            protocol=6,
            packets=10 + i,
            bytes=1_000 + 10 * i,
        )
        for i in range(20)
    ]


@pytest.fixture
def packet_records_small():
    """Packet records with fixed five-tuples for codec round-trip tests."""
    return [
        PacketRecord(
            timestamp=2000.0 + i * 0.25,
            src_ip=ipv4_to_int("172.16.5.9"),
            dst_ip=ipv4_to_int("198.51.100.33"),
            src_port=50_000 + (i % 4),
            dst_port=53,
            protocol=17,
            bytes=120,
        )
        for i in range(40)
    ]
