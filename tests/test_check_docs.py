"""The CI docs checker (scripts/check_docs.py).

The checker executes markdown code fences (python directly, bash/console
via the shell with ``flowtree`` rewritten to ``python -m repro.cli``) and
resolves intra-repo links, so the written specs in ``docs/`` cannot drift
from the code they document.  Exit codes mirror flowlint: 0 clean,
1 failures, 2 usage error.
"""

import importlib.util
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _SCRIPT)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestFenceExtraction:
    def test_languages_and_bodies(self):
        text = "\n".join([
            "prose",
            "```python",
            "x = 1",
            "```",
            "```text",
            "not runnable",
            "```",
            "```",
            "no language",
            "```",
        ])
        fences = check_docs.extract_fences(text)
        assert [(lang, body) for _, lang, body, _ in fences] == [
            ("python", "x = 1"),
            ("text", "not runnable"),
            ("", "no language"),
        ]

    def test_skip_marker_applies_to_next_fence_only(self):
        text = "\n".join([
            check_docs.SKIP_MARKER,
            "```python",
            "raise SystemExit(1)",
            "```",
            "```python",
            "x = 1",
            "```",
        ])
        fences = check_docs.extract_fences(text)
        assert [skipped for _, _, _, skipped in fences] == [True, False]

    def test_prose_between_marker_and_fence_cancels_skip(self):
        text = "\n".join([
            check_docs.SKIP_MARKER,
            "some prose in between",
            "```python",
            "x = 1",
            "```",
        ])
        fences = check_docs.extract_fences(text)
        assert [skipped for _, _, _, skipped in fences] == [False]


class TestShellCommands:
    def test_bash_fences_run_every_line(self):
        body = "# a comment\nflowtree lint --list-rules\necho hi"
        assert check_docs.shell_commands(body, "bash") == [
            "flowtree lint --list-rules", "echo hi",
        ]

    def test_console_fences_run_only_prompted_lines(self):
        body = "$ echo hi\nhi\n$ echo bye\nbye"
        assert check_docs.shell_commands(body, "console") == ["echo hi", "echo bye"]


class TestCheckFile:
    def test_clean_file_passes(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("\n".join([
            "A runnable fence and a good link.",
            "```python",
            "from repro.core import Flowtree",
            "```",
            "```bash",
            "flowtree lint --list-rules",
            "```",
            f"See [the script]({_SCRIPT.name}).",
        ]))
        (tmp_path / _SCRIPT.name).write_text("placeholder")
        assert check_docs.check_file(doc, tmp_path) == []

    def test_failing_python_fence_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\nraise RuntimeError('boom')\n```\n")
        failures = check_docs.check_file(doc, tmp_path)
        assert len(failures) == 1
        assert "python fence failed" in failures[0]
        assert "boom" in failures[0]

    def test_failing_command_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\nflowtree definitely-not-a-subcommand\n```\n")
        failures = check_docs.check_file(doc, tmp_path)
        assert len(failures) == 1
        assert "command failed" in failures[0]

    def test_broken_link_reported_and_fragments_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("\n".join([
            "[missing](nope.md)",
            "[anchor-only](#section)",
            "[external](https://example.com/nope)",
        ]))
        failures = check_docs.check_file(doc, tmp_path)
        assert len(failures) == 1
        assert "nope.md" in failures[0]

    def test_links_inside_fences_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```text\n[not a link check](nope.md)\n```\n")
        assert check_docs.check_file(doc, tmp_path) == []

    def test_skipped_fence_not_run(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            f"{check_docs.SKIP_MARKER}\n```bash\nexit 1\n```\n"
        )
        assert check_docs.check_file(doc, tmp_path) == []


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("just prose\n")
        bad = tmp_path / "bad.md"
        bad.write_text("[missing](gone.md)\n")
        assert check_docs.main([str(good)]) == 0
        assert check_docs.main([str(good), str(bad)]) == 1
        assert check_docs.main([str(tmp_path / "absent.md")]) == 2
        capsys.readouterr()

    def test_repo_docs_pass(self):
        # The real contract: the shipped documentation must check clean.
        repo = Path(__file__).resolve().parent.parent
        files = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
        assert files, "repo documentation is missing"
        assert check_docs.main([str(path) for path in files]) == 0
