"""Pipelined daemon: bin policy and export equivalence across worker modes.

``FlowtreeDaemon(workers=N)`` overlaps bin N+1 ingestion with bin N
folding, but its observable behaviour is pinned to the single-process
daemon: the same bins, in the same order, with byte-identical
``SummaryMessage`` payloads (compaction disabled), the same late-record
accounting, and the same record counts — crash or no crash.
"""

import pytest

from helpers import make_timed_record

from repro.core import FlowtreeConfig
from repro.distributed import Deployment, FlowtreeDaemon, SimulatedTransport
from repro.features.schema import SCHEMA_4F

UNBOUNDED = FlowtreeConfig(max_nodes=None)


def _timed_stream(count=1200, late_every=173, bin_span=5.0):
    """A deterministic multi-bin stream with sprinkled-in late records."""
    records = []
    timestamp = 0.0
    for index in range(count):
        timestamp += 0.017 + (index % 7) * 0.003
        late = index > 0 and index % late_every == 0
        records.append(
            make_timed_record(
                timestamp - (bin_span + 1.0 if late else 0.0),
                src=f"10.{index % 3}.{index % 29}.{1 + index % 7}",
                dst=f"198.51.100.{1 + index % 5}",
                sport=1024 + index % 11,
                dport=(53, 80, 443)[index % 3],
                packets=1 + index % 4,
            )
        )
    return records


def _run_daemon(records, workers, batch_size=64, use_diffs=True, full_every=3,
                crash_worker=None, crash_at=None, config=UNBOUNDED):
    transport = SimulatedTransport()
    daemon = FlowtreeDaemon(
        site="s", schema=SCHEMA_4F, transport=transport, bin_width=5.0,
        config=config, use_diffs=use_diffs, full_every=full_every, workers=workers,
    )
    try:
        if crash_at is None:
            daemon.consume_records(records, batch_size=batch_size)
        else:
            daemon.consume_records(records[:crash_at], batch_size=batch_size)
            daemon._pool.inject_worker_failure(crash_worker)
            daemon.consume_records(records[crash_at:], batch_size=batch_size)
        flushed = daemon.flush()
        stats = daemon.stats
        worker_stats = daemon.worker_stats()
    finally:
        daemon.close()
    messages = [message for _, message in transport.receive("collector")]
    return messages, stats, flushed, worker_stats


class TestPipelineEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_summary_messages_identical_to_single_process(self, workers):
        records = _timed_stream()
        baseline_messages, baseline_stats, _, _ = _run_daemon(records, workers=0)
        messages, stats, _, worker_stats = _run_daemon(records, workers=workers)

        assert [m.payload for m in messages] == [m.payload for m in baseline_messages]
        assert [(m.bin_index, m.kind, m.bin_start, m.bin_end, m.record_count)
                for m in messages] == \
               [(m.bin_index, m.kind, m.bin_start, m.bin_end, m.record_count)
                for m in baseline_messages]
        assert stats.records_consumed == baseline_stats.records_consumed == len(records)
        assert stats.bins_exported == baseline_stats.bins_exported > 3
        assert stats.late_records == baseline_stats.late_records > 0
        assert stats.exported_bytes == baseline_stats.exported_bytes
        # The full-vs-diff choice is made on identical trees, so it agrees.
        assert stats.full_summaries == baseline_stats.full_summaries
        assert stats.diff_summaries == baseline_stats.diff_summaries
        # Every bin went through the asynchronous export path.
        assert stats.pipelined_exports == stats.bins_exported
        assert worker_stats["workers"] == workers
        assert worker_stats["records_ingested"] == len(records)

    def test_per_record_path_matches_batched(self):
        records = _timed_stream(count=400)
        batched, batched_stats, _, _ = _run_daemon(records, workers=2, batch_size=64)
        per_record, record_stats, _, _ = _run_daemon(records, workers=2, batch_size=None)
        assert [m.payload for m in per_record] == [m.payload for m in batched]
        assert record_stats.late_records == batched_stats.late_records
        assert record_stats.bins_exported == batched_stats.bins_exported

    def test_late_record_policy_charges_open_bin(self):
        # Bin 0 at t=[0,5), bin 1 at t=[5,10); the t=1.0 straggler arrives
        # while bin 1 is open and must be charged there, not dropped.
        records = [
            make_timed_record(0.5, sport=2001),
            make_timed_record(6.0, sport=2002),
            make_timed_record(1.0, sport=2003),
            make_timed_record(7.0, sport=2004),
        ]
        for workers in (0, 2):
            messages, stats, _, _ = _run_daemon(records, workers=workers, batch_size=2)
            assert stats.late_records == 1
            assert [m.bin_index for m in messages] == [0, 1]
            assert [m.record_count for m in messages] == [1, 3]

    def test_bin_advancement_skips_empty_bins(self):
        records = [make_timed_record(0.1), make_timed_record(31.0), make_timed_record(32.0)]
        for workers in (0, 2):
            messages, _, _, _ = _run_daemon(records, workers=workers)
            assert [m.bin_index for m in messages] == [0, 6]
            assert [m.record_count for m in messages] == [1, 2]


class TestFlushSemantics:
    def test_flush_joins_outstanding_and_returns_last_message(self):
        records = _timed_stream(count=300)
        messages, _, flushed, _ = _run_daemon(records, workers=2)
        assert flushed is not None
        assert flushed is messages[-1]

    def test_flush_without_records_returns_none(self):
        transport = SimulatedTransport()
        daemon = FlowtreeDaemon(site="s", schema=SCHEMA_4F, transport=transport,
                                bin_width=5.0, config=UNBOUNDED, workers=2)
        assert daemon.flush() is None
        daemon.close()
        assert transport.receive("collector") == []

    def test_close_is_idempotent_and_flushes(self):
        transport = SimulatedTransport()
        daemon = FlowtreeDaemon(site="s", schema=SCHEMA_4F, transport=transport,
                                bin_width=5.0, config=UNBOUNDED, workers=2)
        daemon.consume_records(_timed_stream(count=50), batch_size=16)
        daemon.close()
        daemon.close()
        assert len(transport.receive("collector")) == daemon.stats.bins_exported
        assert daemon.stats.bins_exported >= 1

    def test_closed_daemon_refuses_records(self):
        from repro.core import DaemonError

        transport = SimulatedTransport()
        daemon = FlowtreeDaemon(site="s", schema=SCHEMA_4F, transport=transport,
                                bin_width=5.0, config=UNBOUNDED, workers=2)
        daemon.consume_records(_timed_stream(count=20), batch_size=8)
        daemon.close()
        # Accepting records again would silently respawn (and leak) a pool.
        with pytest.raises(DaemonError):
            daemon.consume_record(make_timed_record(999.0))


class TestCrashDuringBin:
    @pytest.mark.parametrize("crash_at", [150, 450, 820])
    def test_mid_bin_crash_is_invisible_in_exports(self, crash_at):
        """A worker killed mid-bin (including with a bin's summaries in
        flight) must not drop or double-count any sub-batch: the exported
        payload sequence stays byte-identical to the no-crash run."""
        records = _timed_stream()
        baseline, baseline_stats, _, _ = _run_daemon(records, workers=0)
        messages, stats, _, worker_stats = _run_daemon(
            records, workers=2, crash_worker=crash_at % 2, crash_at=crash_at
        )
        assert [m.payload for m in messages] == [m.payload for m in baseline]
        assert stats.records_consumed == baseline_stats.records_consumed
        assert stats.late_records == baseline_stats.late_records
        assert worker_stats["worker_restarts"] >= 1


class TestDeploymentWiring:
    def test_parallel_deployment_matches_single_process(self):
        records = _timed_stream(count=600)
        results = {}
        for workers in (0, 2):
            with Deployment(SCHEMA_4F, ["a", "b"], bin_width=5.0,
                            daemon_config=UNBOUNDED, daemon_workers=workers) as deployment:
                deployment.attach_records("a", records[:300])
                deployment.attach_records("b", records[300:])
                consumed = deployment.run()
                assert consumed == {"a": 300, "b": 300}
                merged = deployment.collector.merged()
                bins = {
                    site: deployment.collector.bins_for(site)
                    for site in deployment.site_names
                }
                stats = deployment.worker_stats()
                results[workers] = (merged.total_counters(), bins, stats)
        assert results[0][0] == results[2][0]
        assert results[0][1] == results[2][1]
        assert results[0][2] == {"a": {}, "b": {}}
        assert results[2][2]["a"]["workers"] == 2
        assert results[2][2]["b"]["records_ingested"] == 300
