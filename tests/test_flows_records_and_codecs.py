"""Tests for flow/packet records, the flow cache and the NetFlow/IPFIX codecs."""

import io

import pytest

from repro.core.errors import SerializationError
from repro.features.base import FeatureError
from repro.features.ipaddr import ipv4_to_int
from repro.flows.ipfix import (
    FLOW_RECORD_SIZE,
    IpfixDecoder,
    encode_message,
    encode_messages,
)
from repro.flows.ipfix import raw_export_size as ipfix_raw_size
from repro.flows.netflow import (
    HEADER_SIZE,
    MAX_RECORDS_PER_DATAGRAM,
    RECORD_SIZE,
    decode_datagram,
    decode_stream,
    encode_datagram,
    encode_datagrams,
    raw_export_size,
)
from repro.flows.records import FlowRecord, PacketRecord, packets_to_flows


class TestRecords:
    def test_packet_record_defaults(self):
        packet = PacketRecord(1.0, 1, 2, 3, 4)
        assert packet.packets == 1
        assert packet.protocol == 6
        assert packet.five_tuple == (6, 1, 2, 3, 4)

    def test_packet_validation(self):
        packet = PacketRecord(1.0, 1, 2, 3, 99999)
        with pytest.raises(FeatureError):
            packet.validate()

    def test_flow_record_properties(self):
        flow = FlowRecord(10.0, 20.0, 1, 2, 3, 4, packets=7, bytes=700)
        assert flow.duration == 10.0
        assert flow.timestamp == 10.0
        assert flow.five_tuple == (6, 1, 2, 3, 4)

    def test_flow_validation_rejects_reversed_times(self):
        flow = FlowRecord(20.0, 10.0, 1, 2, 3, 4)
        with pytest.raises(FeatureError):
            flow.validate()

    def test_flow_dict_round_trip(self):
        flow = FlowRecord(
            10.0, 20.0,
            ipv4_to_int("10.0.0.1"), ipv4_to_int("192.0.2.1"),
            1234, 443, protocol=17, packets=5, bytes=500, exporter="edge-1",
        )
        restored = FlowRecord.from_dict(flow.to_dict())
        assert restored.src_ip == flow.src_ip
        assert restored.dst_ip == flow.dst_ip
        assert restored.packets == 5
        assert restored.exporter == "edge-1"

    def test_packets_to_flows_aggregates_five_tuples(self, packet_records_small):
        flows = list(packets_to_flows(iter(packet_records_small)))
        # All packets share src/dst/protocol and cycle over 4 source ports.
        assert len(flows) == 4
        assert sum(flow.packets for flow in flows) == len(packet_records_small)
        assert sum(flow.bytes for flow in flows) == sum(p.bytes for p in packet_records_small)

    def test_packets_to_flows_active_timeout_splits_long_flows(self):
        packets = [PacketRecord(t, 1, 2, 3, 4, bytes=10) for t in (0.0, 10.0, 400.0)]
        flows = list(packets_to_flows(iter(packets), active_timeout=300.0))
        assert len(flows) == 2
        assert [flow.packets for flow in sorted(flows, key=lambda f: f.start_time)] == [2, 1]

    def test_packets_to_flows_sets_exporter(self, packet_records_small):
        flows = list(packets_to_flows(iter(packet_records_small), exporter="r1"))
        assert all(flow.exporter == "r1" for flow in flows)


class TestNetflowV5:
    def test_datagram_round_trip(self, flow_records_small):
        header, decoded = decode_datagram(
            encode_datagram(flow_records_small[:10], flow_sequence=5, base_time=1000.0)
        )
        assert header.version == 5
        assert header.count == 10
        assert header.flow_sequence == 5
        assert len(decoded) == 10
        for original, restored in zip(flow_records_small[:10], decoded):
            assert restored.src_ip == original.src_ip
            assert restored.dst_ip == original.dst_ip
            assert restored.src_port == original.src_port
            assert restored.dst_port == original.dst_port
            assert restored.protocol == original.protocol
            assert restored.packets == original.packets
            assert restored.bytes == original.bytes
            assert restored.start_time == pytest.approx(original.start_time, abs=0.002)

    def test_datagram_size_formula(self, flow_records_small):
        payload = encode_datagram(flow_records_small[:7])
        assert len(payload) == HEADER_SIZE + 7 * RECORD_SIZE

    def test_rejects_oversized_datagram(self, flow_records_small):
        too_many = flow_records_small * 2
        assert len(too_many) > MAX_RECORDS_PER_DATAGRAM
        with pytest.raises(SerializationError):
            encode_datagram(too_many)

    def test_stream_chunking(self, flow_records_small):
        flows = flow_records_small * 4  # 80 flows -> 3 datagrams
        datagrams = list(encode_datagrams(flows, base_time=990.0))
        assert len(datagrams) == 3
        decoded = list(decode_stream(datagrams, exporter="edge"))
        assert len(decoded) == len(flows)
        assert all(flow.exporter == "edge" for flow in decoded)

    def test_decode_rejects_wrong_version(self, flow_records_small):
        payload = bytearray(encode_datagram(flow_records_small[:1]))
        payload[1] = 9  # corrupt the version field
        with pytest.raises(SerializationError):
            decode_datagram(bytes(payload))

    def test_decode_rejects_truncation(self, flow_records_small):
        payload = encode_datagram(flow_records_small[:3])
        with pytest.raises(SerializationError):
            decode_datagram(payload[: HEADER_SIZE + RECORD_SIZE])

    def test_raw_export_size(self):
        assert raw_export_size(0) == 0
        assert raw_export_size(1) == HEADER_SIZE + RECORD_SIZE
        assert raw_export_size(30) == HEADER_SIZE + 30 * RECORD_SIZE
        assert raw_export_size(31) == 2 * HEADER_SIZE + 31 * RECORD_SIZE
        # Exactly matches what encoding actually produces.
        flows = [FlowRecord(0, 1, 1, 2, 3, 4) for _ in range(75)]
        actual = sum(len(d) for d in encode_datagrams(flows))
        assert raw_export_size(75) == actual


class TestIpfix:
    def test_message_round_trip_with_template(self, flow_records_small):
        message = encode_message(flow_records_small, include_template=True)
        decoder = IpfixDecoder(exporter="edge-2")
        header, decoded = decoder.decode_message(message)
        assert header.version == 10
        assert len(decoded) == len(flow_records_small)
        assert decoded[0].exporter == "edge-2"
        assert decoded[0].packets == flow_records_small[0].packets
        assert decoded[0].bytes == flow_records_small[0].bytes

    def test_data_without_template_rejected(self, flow_records_small):
        message = encode_message(flow_records_small, include_template=False)
        with pytest.raises(SerializationError):
            IpfixDecoder().decode_message(message)

    def test_decoder_remembers_template_across_messages(self, flow_records_small):
        decoder = IpfixDecoder()
        first = encode_message(flow_records_small[:5], include_template=True)
        second = encode_message(flow_records_small[5:10], include_template=False)
        decoder.decode_message(first)
        _, decoded = decoder.decode_message(second)
        assert len(decoded) == 5

    def test_stream_encoding_batches(self, flow_records_small):
        messages = list(encode_messages(flow_records_small, records_per_message=8))
        assert len(messages) == 3
        decoded = list(IpfixDecoder().decode_stream(messages))
        assert len(decoded) == len(flow_records_small)

    def test_length_mismatch_rejected(self, flow_records_small):
        message = encode_message(flow_records_small[:2])
        with pytest.raises(SerializationError):
            IpfixDecoder().decode_message(message + b"extra")

    def test_rejects_bad_batch_size(self, flow_records_small):
        with pytest.raises(SerializationError):
            list(encode_messages(flow_records_small, records_per_message=0))

    def test_raw_export_size_close_to_actual(self, flow_records_small):
        flows = flow_records_small * 10  # 200 flows
        actual = sum(len(m) for m in encode_messages(flows, records_per_message=100))
        assert ipfix_raw_size(len(flows), records_per_message=100) == actual
        assert ipfix_raw_size(0) == 0
        assert ipfix_raw_size(1) > FLOW_RECORD_SIZE
