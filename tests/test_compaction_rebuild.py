"""Rebuild-vs-incremental compaction: equivalence bounds and mode dispatch.

The bulk rebuild compactor (``compaction="rebuild"``) must be a drop-in
replacement for the incremental victim rounds wherever summaries are
*used*: same node budget, exactly the same totals, and estimator answers
within the paper's error bound on every trace family.  ``"auto"`` must
dispatch between the two strategies purely on the batch-overshoot policy,
staying incremental in the paper-like regime so the existing byte-identical
equivalence guarantees keep holding there.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SimpleRecord, make_record

from repro.core import (
    Flowtree,
    FlowtreeConfig,
    ParallelShardedFlowtree,
    ShardedFlowtree,
    to_bytes,
)
from repro.core.errors import ConfigurationError
from repro.features.ipaddr import IPv4Prefix
from repro.features.ports import PortRange
from repro.features.protocol import Protocol
from repro.features.schema import SCHEMA_4F
from repro.traces import (
    CaidaLikeTraceGenerator,
    DdosTraceGenerator,
    PortScanTraceGenerator,
)

#: The paper's Fig. 3 evaluation treats a weighted relative error below
#: 0.25 as faithful; both compaction strategies must stay inside it on
#: heavy aggregates, and inside it relative to each other.
ERROR_BOUND = 0.25

_TRACES = {
    "zipf": lambda: CaidaLikeTraceGenerator(seed=31, flow_population=30_000).packets(30_000),
    "ddos": lambda: DdosTraceGenerator(seed=31).packets(30_000),
    "portscan": lambda: PortScanTraceGenerator(seed=31).packets(30_000),
}


def _record(src_host, dst_host, sport, dport, packets):
    return SimpleRecord(
        src_ip=(10 << 24) | src_host,
        dst_ip=(192 << 24) | (168 << 16) | dst_host,
        src_port=1024 + sport,
        dst_port=dport,
        packets=packets,
        bytes=packets * 100,
    )


records_strategy = st.lists(
    st.builds(
        _record,
        src_host=st.integers(0, 200),
        dst_host=st.integers(0, 8),
        sport=st.integers(0, 10),
        dport=st.sampled_from([53, 80, 443]),
        packets=st.integers(1, 5),
    ),
    min_size=1,
    max_size=200,
)


def _heavy_query_keys(exact, min_share=0.01):
    """On-trajectory generalizations of the heaviest flows plus the heavy
    kept keys themselves — the aggregates operators actually query."""
    total = exact.total_counters().packets
    keys = []
    for key, _ in exact.top(10):
        if key.is_root:
            continue
        keys.append(key)
        steps = 0
        for ancestor in exact.chain_builder.chain(key):
            steps += 1
            if steps in (4, 8, 12) and not ancestor.is_root:
                keys.append(ancestor)
    heavy = []
    seen = set()
    for key in keys:
        if key in seen:
            continue
        seen.add(key)
        if exact.estimate(key).value("packets") >= total * min_share:
            heavy.append(key)
    return heavy


class TestRebuildEquivalence:
    @pytest.mark.parametrize("trace", sorted(_TRACES))
    def test_budget_totals_and_estimates_match_incremental(self, trace):
        packets = list(_TRACES[trace]())
        distinct = len({SCHEMA_4F.signature_of(p) for p in packets})
        budget = max(64, distinct // 10)
        assert distinct > 4 * budget, "workload must be in the budget << flows regime"

        exact = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        exact.add_batch(packets)
        trees = {}
        for mode in ("incremental", "rebuild"):
            tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=budget, compaction=mode))
            tree.add_batch(packets)
            tree.validate()
            trees[mode] = tree

        # Identical node budgets: both strategies end inside the same cap...
        assert len(trees["incremental"]) <= budget
        assert len(trees["rebuild"]) <= budget
        # ...and conserve every counter exactly.
        assert trees["incremental"].total_counters() == exact.total_counters()
        assert trees["rebuild"].total_counters() == exact.total_counters()
        assert trees["rebuild"].stats.rebuilds > 0
        assert trees["incremental"].stats.rebuilds == 0

        heavy = _heavy_query_keys(exact)
        assert heavy, "trace produced no heavy aggregates to query"
        for key in heavy:
            truth = exact.estimate(key).value("packets")
            for mode, tree in trees.items():
                estimate = tree.estimate(key).value("packets")
                error = abs(estimate - truth) / truth
                assert error <= ERROR_BOUND, (
                    f"{trace}/{mode}: {key.pretty()} estimated {estimate} "
                    f"vs {truth} (error {error:.2f})"
                )
            spread = abs(
                trees["rebuild"].estimate(key).value("packets")
                - trees["incremental"].estimate(key).value("packets")
            ) / truth
            assert spread <= ERROR_BOUND, (
                f"{trace}: strategies disagree by {spread:.2f} on {key.pretty()}"
            )

    @settings(max_examples=25, deadline=None)
    @given(records=records_strategy)
    def test_forced_rebuild_is_valid_and_conserving(self, records):
        """Property: any stream, tight budget — rebuild keeps the contract."""
        loop_tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, victim_batch=8))
        for record in records:
            loop_tree.add_record(record)
        rebuild_tree = Flowtree(
            SCHEMA_4F,
            FlowtreeConfig(max_nodes=64, victim_batch=8, compaction="rebuild"),
        )
        rebuild_tree.add_batch(records, batch_size=0)
        rebuild_tree.validate()
        assert len(rebuild_tree) <= 64
        assert rebuild_tree.total_counters() == loop_tree.total_counters()
        root_estimate = rebuild_tree.estimate(rebuild_tree.root.key)
        assert root_estimate.counters == rebuild_tree.total_counters()

    @pytest.mark.parametrize("schema_name", ["1f", "5f"])
    def test_rebuild_works_on_other_schema_arities(self, schema_name, schema_1f, schema_5f):
        """The raw-signature fast path must handle bare (1-field) signatures
        and the protocol dimension's two-level hierarchy (5-field)."""
        schema = schema_1f if schema_name == "1f" else schema_5f
        packets = list(CaidaLikeTraceGenerator(seed=9, flow_population=20_000).packets(8_000))
        reference = Flowtree(schema, FlowtreeConfig(max_nodes=None))
        reference.add_batch(packets)
        tree = Flowtree(schema, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        tree.add_batch(packets)
        tree.validate()
        assert tree.stats.rebuilds > 0
        assert len(tree) <= 64
        assert tree.total_counters() == reference.total_counters()

    def test_rebuild_enforces_budget_over_protection(self):
        """Protection orders victims but the budget wins — a batch where
        almost every entry is protected must still fold down to the cap
        (the incremental rounds reach the same end state via their
        no-unprotected-leaves fallback)."""
        records = [
            make_record(src=f"10.{i // 200}.{(i // 40) % 5}.{i % 40}",
                        sport=1000 + i, packets=5 if i < 450 else 1)
            for i in range(500)
        ]
        config = FlowtreeConfig(max_nodes=64, compaction="rebuild", protected_min_count=5)
        tree = Flowtree(SCHEMA_4F, config)
        tree.add_batch(records, batch_size=0)
        tree.validate()
        assert len(tree) <= 64
        incremental = Flowtree(SCHEMA_4F, config.with_compaction("incremental"))
        for record in records:
            incremental.add_record(record)
        assert tree.total_counters() == incremental.total_counters()
        assert len(incremental) <= 64

    def test_rebuild_with_generic_wire_token_fallbacks(self, monkeypatch):
        """A user-defined feature type that overrides neither ``mask_token``
        nor ``mask_raw`` must rebuild correctly through the base class's
        wire-form fallbacks (tokens are wire strings; ``mask_raw`` must
        compose by round-tripping ``from_wire``)."""
        from repro.features import schema as schema_module
        from repro.features.base import Feature

        class WireTokenProtocol(Protocol):
            """Protocol with only the mandatory Feature interface — token
            methods fall back to the generic implementations."""

            raw_signature_tokens = False

            def mask_token(self, target_specificity):
                return Feature.mask_token(self, target_specificity)

            @classmethod
            def mask_raw(cls, token, target_specificity):
                return Feature.mask_raw.__func__(cls, token, target_specificity)

            def generalize(self):
                return WireTokenProtocol(None)

            @classmethod
            def root(cls):
                return cls(None)

        monkeypatch.setitem(schema_module._FEATURE_TYPES, "protocol", WireTokenProtocol)
        monkeypatch.setitem(
            schema_module._EXTRACTORS, "protocol",
            lambda record: WireTokenProtocol(record.protocol),
        )
        monkeypatch.setitem(schema_module._ROOTS, "protocol", WireTokenProtocol.root)
        schema = schema_module.FlowSchema(
            "5f-wire", ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")
        )
        assert not Flowtree(schema, FlowtreeConfig())._raw_token_schema

        packets = list(CaidaLikeTraceGenerator(seed=9, flow_population=20_000).packets(6_000))
        reference = Flowtree(schema, FlowtreeConfig(max_nodes=None))
        reference.add_batch(packets)
        tree = Flowtree(schema, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        tree.add_batch(packets)
        tree.validate()
        assert tree.stats.rebuilds > 0
        assert len(tree) <= 64
        assert tree.total_counters() == reference.total_counters()

    def test_rebuild_without_raw_token_schema_uses_key_items(self, schema_5f, monkeypatch):
        """A feature type that cannot vouch for raw-signature tokens must
        push the rebuild through the (always-consistent) key-items path —
        same results, just without the key-construction shortcut."""
        from repro.features.protocol import Protocol

        packets = list(CaidaLikeTraceGenerator(seed=9, flow_population=20_000).packets(8_000))
        reference = Flowtree(schema_5f, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        reference.add_batch(packets)
        monkeypatch.setattr(Protocol, "raw_signature_tokens", False)
        tree = Flowtree(schema_5f, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        assert not tree._raw_token_schema
        tree.add_batch(packets)
        tree.validate()
        assert tree.stats.rebuilds > 0
        assert tree.total_counters() == reference.total_counters()
        assert to_bytes(tree) == to_bytes(reference)

    def test_rebuild_is_deterministic(self):
        packets = list(CaidaLikeTraceGenerator(seed=5, flow_population=20_000).packets(12_000))
        config = FlowtreeConfig(max_nodes=256, compaction="rebuild")
        first = Flowtree(SCHEMA_4F, config)
        first.add_batch(packets)
        second = Flowtree(SCHEMA_4F, config)
        second.add_batch(packets)
        assert to_bytes(first) == to_bytes(second)

    def test_unbounded_mode_is_untouched_by_strategy(self):
        """With compaction disabled the mode must not change a single byte."""
        records = [make_record(src=f"10.3.{i % 40}.{i % 7}", sport=3000 + i) for i in range(300)]
        reference = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        for record in records:
            reference.add_record(record)
        for mode in ("incremental", "rebuild", "auto"):
            tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None, compaction=mode))
            tree.add_batch(records)
            assert to_bytes(tree) == to_bytes(reference), mode


class TestAutoDispatch:
    def _distinct_records(self, count):
        return [
            make_record(src=f"10.{i // 250}.{(i // 50) % 5}.{i % 50}", sport=1000 + i % 997)
            for i in range(count)
        ]

    def test_auto_stays_incremental_on_small_overshoot(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="auto"))
        tree.add_batch(self._distinct_records(70), batch_size=0)
        assert tree.stats.rebuilds == 0
        assert tree.stats.compactions >= 1
        assert len(tree) <= 64

    def test_auto_rebuilds_on_large_overshoot(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="auto"))
        tree.add_batch(self._distinct_records(600), batch_size=0)
        assert tree.stats.rebuilds >= 1
        assert len(tree) <= 64

    def test_auto_ignores_resident_working_set(self):
        """Re-covering keys the tree already holds is not an overshoot: a
        steady-state working set that fits the budget must never trigger a
        rebuild (or any compaction), no matter how many batches re-cover it."""
        records = self._distinct_records(55)     # + root = 56 nodes, fits 64
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="auto"))
        for _ in range(5):
            tree.add_batch(records, batch_size=0)
        assert tree.stats.rebuilds == 0
        assert tree.stats.compactions == 0
        assert len(tree) == 56

    def test_add_aggregated_streams_generator_inputs(self):
        """Generator items must not be buffered for dispatch; they stream
        through the incremental pass and the budget still ends enforced
        (via compact() at the batch boundary, rebuild mode included)."""
        from repro.core.key import FlowKey

        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        tree.add_aggregated(
            (FlowKey.from_record(SCHEMA_4F, record), 1, 0, 1)
            for record in self._distinct_records(300)
        )
        tree.validate()
        assert len(tree) <= 64
        assert tree.total_counters().packets == 300
        assert tree.stats.rebuilds >= 1      # forced mode applied at the boundary

    def test_forced_rebuild_applies_to_eager_compact_below_max(self):
        """compact() between target and max_nodes must still honour a
        forced rebuild mode (dispatch is on the compaction target)."""
        records = self._distinct_records(60)     # 61 nodes: over target 51, under max 64
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        tree.add_batch(records, batch_size=0)
        assert tree.stats.rebuilds == 0          # never exceeded max_nodes
        removed = tree.compact()
        assert removed > 0
        assert tree.stats.rebuilds == 1
        assert len(tree) <= 51

    def test_auto_threshold_is_configurable(self):
        config = FlowtreeConfig(max_nodes=64, compaction="auto", rebuild_threshold=100.0)
        tree = Flowtree(SCHEMA_4F, config)
        tree.add_batch(self._distinct_records(600), batch_size=0)
        assert tree.stats.rebuilds == 0          # overshoot never crosses 100x budget
        assert len(tree) <= 64

    def test_incremental_mode_never_rebuilds(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="incremental"))
        tree.add_batch(self._distinct_records(600), batch_size=0)
        assert tree.stats.rebuilds == 0
        assert len(tree) <= 64

    def test_rebuild_mode_covers_the_per_record_path(self):
        """compact() itself dispatches, so plain add() streams rebuild too."""
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=64, compaction="rebuild"))
        for record in self._distinct_records(200):
            tree.add_record(record)
        tree.validate()
        assert tree.stats.rebuilds >= 1
        assert tree.stats.updates == 200
        assert len(tree) <= 64

    def test_rebuild_selected_policy(self):
        auto = FlowtreeConfig(max_nodes=100, compaction="auto", rebuild_threshold=0.5)
        assert not auto.rebuild_selected(0)
        assert not auto.rebuild_selected(50)     # exactly at threshold: incremental
        assert auto.rebuild_selected(51)
        assert not FlowtreeConfig(max_nodes=None).rebuild_selected(10_000)
        assert FlowtreeConfig(max_nodes=100, compaction="rebuild").rebuild_selected(1)
        assert not FlowtreeConfig(
            max_nodes=100, compaction="incremental"
        ).rebuild_selected(10_000)

    def test_invalid_mode_and_threshold_raise(self):
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(compaction="bulk")
        with pytest.raises(ConfigurationError):
            FlowtreeConfig(rebuild_threshold=0)


class TestShardedAndParallelFlowThrough:
    """The mode must flow through sharding and the process executor
    without observable divergence between the two execution paths."""

    def test_sharded_inherits_mode_and_stays_merge_consistent(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=256, compaction="rebuild")
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=2)
        sharded.add_batch(packet_stream_small, batch_size=512)
        sharded.validate()
        snapshot = sharded.stats_snapshot()
        assert snapshot["rebuilds"] >= 1
        merged = sharded.merged_tree()
        assert merged.total_counters() == sharded.total_counters()
        assert len(merged) <= config.max_nodes

    def test_parallel_byte_identical_to_in_process_under_rebuild(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=128, compaction="rebuild")
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=2)
        sharded.add_batch(packet_stream_small, batch_size=512)
        with ParallelShardedFlowtree(SCHEMA_4F, config, num_workers=2) as parallel:
            parallel.add_batch(packet_stream_small, batch_size=512)
            assert to_bytes(parallel.merged_tree()) == to_bytes(sharded.merged_tree())

    def test_parallel_byte_identical_under_auto(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=128, compaction="auto")
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=2)
        sharded.add_batch(packet_stream_small, batch_size=512)
        with ParallelShardedFlowtree(SCHEMA_4F, config, num_workers=2) as parallel:
            parallel.add_batch(packet_stream_small, batch_size=512)
            assert to_bytes(parallel.merged_tree()) == to_bytes(sharded.merged_tree())


class TestTokenContract:
    """mask_token / mask_raw back the token-space fold; their contract is
    agreement with generalize_to and composability."""

    @given(value=st.integers(0, 2**32 - 1),
           s1=st.integers(0, 32), s2=st.integers(0, 32))
    @settings(max_examples=100, deadline=None)
    def test_prefix_tokens_agree_and_compose(self, value, s1, s2):
        low, high = sorted((s1, s2))
        feature = IPv4Prefix(value & ~((1 << (32 - high)) - 1) if high < 32 else value, high)
        assert feature.mask_token(low) == IPv4Prefix.mask_raw(feature.network, low)
        assert IPv4Prefix.mask_raw(IPv4Prefix.mask_raw(value, high), low) == \
            IPv4Prefix.mask_raw(value, low)
        assert feature.mask_token(low) == feature.generalize_to(low).mask_token(low)

    @given(port=st.integers(0, 65_535), s1=st.integers(0, 16), s2=st.integers(0, 16))
    @settings(max_examples=100, deadline=None)
    def test_port_tokens_compose(self, port, s1, s2):
        low, high = sorted((s1, s2))
        assert PortRange.mask_raw(PortRange.mask_raw(port, high), low) == \
            PortRange.mask_raw(port, low)

    def test_protocol_tokens(self):
        tcp = Protocol(6)
        assert tcp.mask_token(1) == 6
        assert tcp.mask_token(0) is None
        assert Protocol.mask_raw(6, 1) == 6
        assert Protocol.mask_raw(6, 0) is None

    def test_tokens_identify_ancestors(self):
        a = IPv4Prefix((10 << 24) | (1 << 16) | (2 << 8) | 3, 32)
        b = IPv4Prefix((10 << 24) | (1 << 16) | (2 << 8) | 9, 32)
        c = IPv4Prefix((10 << 24) | (9 << 16), 32)
        assert a.mask_token(24) == b.mask_token(24)
        assert a.mask_token(24) != c.mask_token(24)
        assert (a.mask_token(24) == b.mask_token(24)) == (
            a.generalize_to(24) == b.generalize_to(24)
        )
