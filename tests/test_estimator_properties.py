"""Estimator invariants (property tests).

The query decomposition and the batch/exploratory helpers still walk
chains and whole node sets (ROADMAP: next optimization target), so their
contracts are pinned here before that rework:

* ``decompose()`` terms sum exactly to ``estimate()`` for any tree —
  bounded or not — and any query key (kept, absent-specific, generalized
  on- or off-trajectory);
* ``estimate_many`` / ``estimate_values`` are literally the per-key
  ``estimate()`` answers;
* ``children_of`` buckets partition the parent's estimate (with the
  remainder reported under the parent), and ``drill_down`` steps are
  consistent with the breakdown they were derived from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SimpleRecord

from repro.core import (
    Flowtree,
    FlowtreeConfig,
    decompose,
    estimate_many,
    estimate_values,
)
from repro.core.estimator import children_of, drill_down
from repro.core.key import FlowKey
from repro.features.schema import SCHEMA_4F


def _record(src_host, dst_host, sport, dport, packets):
    return SimpleRecord(
        src_ip=(10 << 24) | src_host,
        dst_ip=(192 << 24) | (168 << 16) | dst_host,
        src_port=1024 + sport,
        dst_port=dport,
        packets=packets,
        bytes=packets * 100,
    )


records_strategy = st.lists(
    st.builds(
        _record,
        src_host=st.integers(0, 60),
        dst_host=st.integers(0, 5),
        sport=st.integers(0, 8),
        dport=st.sampled_from([53, 80, 443]),
        packets=st.integers(1, 6),
    ),
    min_size=1,
    max_size=120,
)

# Bounded configs force compaction, so queries hit folded aggregates too.
config_strategy = st.sampled_from(
    [FlowtreeConfig(max_nodes=None), FlowtreeConfig(max_nodes=64, victim_batch=8)]
)


def _build_tree(records, config):
    tree = Flowtree(SCHEMA_4F, config)
    tree.add_batch(records, batch_size=0)
    return tree


def _query_keys(tree, records, generalize_steps):
    """Kept keys, absent fully-specific keys, and (possibly off-trajectory)
    generalizations — the three shapes ``estimate`` decomposes differently."""
    keys = [FlowKey.from_record(SCHEMA_4F, record) for record in records[:8]]
    keys.append(FlowKey.from_record(
        SCHEMA_4F, _record(61, 6, 9, 8080, 1)))   # never in the stream
    for base_index, steps in enumerate(generalize_steps):
        key = keys[base_index % len(keys)]
        for feature_index in steps:
            key = key.generalize_feature(feature_index)
        keys.append(key)
    keys.append(FlowKey.root(SCHEMA_4F))
    return keys


class TestDecomposition:
    @settings(max_examples=25, deadline=None)
    @given(
        records=records_strategy,
        config=config_strategy,
        generalize_steps=st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=10), max_size=5
        ),
        metric=st.sampled_from(["packets", "bytes", "flows"]),
    )
    def test_terms_sum_to_estimate(self, records, config, generalize_steps, metric):
        tree = _build_tree(records, config)
        for key in _query_keys(tree, records, generalize_steps):
            estimate = tree.estimate(key).value(metric)
            terms = decompose(tree, key, metric=metric)
            assert sum(term.value for term in terms) == estimate, key.pretty()
            # Exactly answerable queries decompose into node terms only.
            if key in tree:
                assert all(term.kind == "node" for term in terms)
            # At most one residual, always charged at the query key itself.
            residuals = [term for term in terms if term.kind == "residual"]
            assert len(residuals) <= 1
            for residual in residuals:
                assert residual.key == key

    def test_zero_traffic_decomposes_to_nothing(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        key = FlowKey.from_record(SCHEMA_4F, _record(1, 1, 1, 80, 1))
        assert decompose(tree, key) == []
        assert tree.estimate(key).value() == 0


class TestBatchEstimates:
    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_estimate_many_agrees_with_per_key_estimate(self, records, config):
        tree = _build_tree(records, config)
        keys = _query_keys(tree, records, [[0], [1, 1], [0, 2, 3]])
        answers = estimate_many(tree, keys)
        assert set(answers) == set(keys)
        for key in keys:
            single = tree.estimate(key)
            assert answers[key].counters == single.counters
            assert answers[key].exact_node == single.exact_node
        for metric in ("packets", "bytes", "flows"):
            values = estimate_values(tree, keys, metric=metric)
            assert values == {key: tree.estimate(key).value(metric) for key in keys}


class TestDrilldown:
    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy, config=config_strategy,
           feature_index=st.integers(0, 3))
    def test_children_partition_the_parent_estimate(self, records, config, feature_index):
        tree = _build_tree(records, config)
        parent = FlowKey.root(SCHEMA_4F)
        total = tree.estimate(parent).value("packets")
        breakdown = children_of(tree, parent, feature_index, step=4, metric="packets")
        for bucket_key, value in breakdown:
            assert value > 0
            assert parent.contains(bucket_key)
        # With the remainder reported under the parent itself, the buckets
        # partition the estimate exactly; without it they can only undershoot.
        accounted = sum(value for _, value in breakdown)
        if any(bucket_key == parent for bucket_key, _ in breakdown):
            assert accounted == total
        else:
            assert accounted <= total

    @settings(max_examples=10, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_drill_down_steps_agree_with_estimates(self, records, config):
        tree = _build_tree(records, config)
        start = FlowKey.root(SCHEMA_4F)
        path = drill_down(tree, start, feature_index=0, metric="packets",
                          step=4, dominance=0.4)
        previous_key, previous_value = start, tree.estimate(start).value("packets")
        for depth, step in enumerate(path, start=1):
            assert step.depth == depth
            assert previous_key.contains(step.key)
            breakdown = dict(children_of(tree, previous_key, 0, step=4, metric="packets"))
            assert breakdown[step.key] == step.value
            assert step.share_of_parent >= 0.4
            assert step.share_of_parent * previous_value == step.value or (
                abs(step.share_of_parent - step.value / previous_value) < 1e-9
            )
            previous_key, previous_value = step.key, step.value
