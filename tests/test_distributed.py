"""Tests for the distributed layer: transport, diff sync, daemon, collector, queries, alerts."""

import pytest

from helpers import key2, make_record
from repro.core.config import FlowtreeConfig
from repro.core.errors import DaemonError, TransportError
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.distributed import (
    AlertManager,
    AlertPolicy,
    Collector,
    Deployment,
    DiffSyncDecoder,
    DiffSyncEncoder,
    DistributedQueryEngine,
    FlowtreeDaemon,
    FlowtreeTimeSeries,
    SimulatedTransport,
    SummaryMessage,
    transfer_comparison,
)
from repro.distributed.messages import QueryRequest
from repro.features.schema import SCHEMA_2F_SRC_DST
from repro.flows.netflow import encode_datagrams
from repro.flows.records import PacketRecord
from repro.traces import CaidaLikeTraceGenerator, EnterpriseTraceGenerator
from repro.traces.replay import split_by_site


def packet(timestamp, src, dst="192.0.2.1", packets_count=1):
    from repro.features.ipaddr import ipv4_to_int

    return PacketRecord(timestamp, ipv4_to_int(src), ipv4_to_int(dst), 1234, 80, 6, 100)


class TestTransport:
    def test_register_send_receive(self):
        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", SummaryMessage("a", 0, 0.0, 1.0, "full", b"payload"))
        assert transport.pending("b") == 1
        received = transport.receive("b")
        assert len(received) == 1
        assert received[0][0] == "a"
        assert transport.pending("b") == 0

    def test_unknown_endpoints_raise(self):
        transport = SimulatedTransport()
        transport.register("a")
        with pytest.raises(TransportError):
            transport.send("a", "ghost", object())
        with pytest.raises(TransportError):
            transport.send("ghost", "a", object())
        with pytest.raises(TransportError):
            transport.receive("ghost")

    def test_byte_accounting_includes_overhead(self):
        transport = SimulatedTransport(overhead_bytes=100)
        transport.register("a")
        transport.register("b")
        message = SummaryMessage("a", 0, 0.0, 1.0, "full", b"x" * 500)
        transport.send("a", "b", message)
        log = transport.channel_log("a", "b")
        assert log.payload_bytes == 500
        assert log.overhead_bytes == 100
        assert transport.bytes_sent() == 600
        assert transport.bytes_sent(source="a") == 600
        assert transport.bytes_sent(destination="nowhere") == 0

    def test_total_log_and_reset(self):
        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", SummaryMessage("a", 0, 0.0, 1.0, "full", b"abc"))
        assert transport.total_log().messages == 1
        transport.reset_accounting()
        assert transport.total_log().messages == 0

    def test_receive_limit(self):
        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        for i in range(5):
            transport.send("a", "b", SummaryMessage("a", i, 0.0, 1.0, "full", b""))
        assert len(transport.receive("b", limit=2)) == 2
        assert transport.pending("b") == 3

    def test_negative_receive_limit_raises(self):
        transport = SimulatedTransport()
        transport.register("a")
        with pytest.raises(TransportError, match="non-negative"):
            transport.receive("a", limit=-1)

    def test_channel_log_reads_do_not_pollute_accounting(self):
        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        log = transport.channel_log("a", "b")  # never-used channel
        assert log.messages == 0
        assert transport.per_channel() == {}
        assert transport.total_log().messages == 0
        # mutating the placeholder must not leak into the table either
        log.record(100, 10)
        assert transport.per_channel() == {}
        assert transport.bytes_sent() == 0

    def test_unsized_message_raises_instead_of_charging_zero(self):
        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        with pytest.raises(TransportError, match="cannot size"):
            transport.send("a", "b", "a raw string")
        with pytest.raises(TransportError, match="cannot size"):
            transport.send("a", "b", object())
        assert transport.pending("b") == 0
        assert transport.bytes_sent() == 0

    def test_invalid_payload_bytes_attribute_raises(self):
        class Lying:
            payload_bytes = -5

        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        with pytest.raises(TransportError, match="invalid"):
            transport.send("a", "b", Lying())

    def test_raw_bytes_payload_is_sized_directly(self):
        class Blob:
            payload = b"\x00" * 37

        transport = SimulatedTransport()
        transport.register("a")
        transport.register("b")
        transport.send("a", "b", Blob())
        assert transport.channel_log("a", "b").payload_bytes == 37


class TestDiffSync:
    def _tree(self, pairs):
        tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=500))
        for (src, dst), count in pairs:
            tree.add(key2(src, dst), packets=count)
        return tree

    def test_first_export_is_full(self):
        encoder = DiffSyncEncoder()
        encoded = encoder.encode(self._tree([(("10.0.0.1", "192.0.2.1"), 5)]))
        assert encoded.kind == "full"
        assert encoded.diff_size is None

    def test_similar_consecutive_bins_ship_smaller_diffs(self):
        encoder = DiffSyncEncoder()
        base_pairs = [((f"10.0.{i}.1", "192.0.2.1"), 50) for i in range(100)]
        encoder.encode(self._tree(base_pairs))
        second = self._tree(base_pairs + [(("172.16.0.1", "192.0.2.1"), 3)])
        encoded = encoder.encode(second)
        assert encoded.kind == "diff"
        assert encoded.chosen_size < encoded.full_size
        assert encoded.savings_fraction > 0.3

    def test_full_every_forces_checkpoints(self):
        encoder = DiffSyncEncoder(full_every=2)
        pairs = [((f"10.0.{i}.1", "192.0.2.1"), 50) for i in range(50)]
        kinds = [encoder.encode(self._tree(pairs)).kind for _ in range(5)]
        assert kinds[0] == "full"
        assert "full" in kinds[1:]

    def test_decoder_round_trip(self):
        encoder = DiffSyncEncoder()
        decoder = DiffSyncDecoder()
        trees = []
        pairs = []
        for step in range(4):
            pairs = pairs + [((f"10.0.{step}.{i}", "192.0.2.1"), step + i) for i in range(1, 20)]
            trees.append(self._tree(pairs))
        for index, tree in enumerate(trees):
            encoded = encoder.encode(tree)
            message = SummaryMessage("site", index, float(index), float(index + 1),
                                     encoded.kind, encoded.payload)
            reconstructed = decoder.decode(message)
            assert reconstructed.total_counters() == tree.total_counters()

    def test_decoder_rejects_diff_without_baseline(self):
        decoder = DiffSyncDecoder()
        tree = self._tree([(("10.0.0.1", "192.0.2.1"), 5)])
        from repro.core.serialization import to_bytes

        message = SummaryMessage("site", 0, 0.0, 1.0, "diff", to_bytes(tree))
        with pytest.raises(DaemonError):
            decoder.decode(message)

    def test_transfer_comparison_diffs_cheaper(self):
        pairs = [((f"10.0.{i // 250}.{i % 250}", "192.0.2.1"), 10) for i in range(1_000)]
        trees = []
        for step in range(5):
            extra = [((f"172.16.{step}.{i}", "198.51.100.1"), 1) for i in range(10)]
            trees.append(self._tree(pairs + extra))
        full_bytes, diff_bytes = transfer_comparison(trees)
        assert diff_bytes < full_bytes * 0.6


class TestTimeSeries:
    def test_routing_and_range_queries(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=10.0,
                                    config=FlowtreeConfig(max_nodes=500))
        for t in range(35):
            series.add_record(packet(float(t), "10.0.0.1"))
        assert series.bin_indices() == [0, 1, 2, 3]
        assert series.query_range(key2("10.0.0.1", "192.0.2.1")) == 35
        assert series.query_range(key2("10.0.0.1", "192.0.2.1"), start_bin=1, end_bin=2) == 20
        merged = series.merged_range()
        assert merged.total_counters().packets == 35

    def test_series_and_totals(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=5.0)
        for t in range(20):
            series.add_record(packet(float(t), "10.0.0.1"))
        per_bin = series.series(key2("10.0.0.1", "192.0.2.1"))
        assert per_bin == {0: 5, 1: 5, 2: 5, 3: 5}
        assert series.total_by_bin() == per_bin

    def test_bin_bounds_and_eviction(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=10.0)
        series.add_record(packet(100.0, "10.0.0.1"))
        series.add_record(packet(125.0, "10.0.0.1"))
        start, end = series.bin_bounds(0)
        assert (start, end) == (100.0, 110.0)
        assert series.evict_before(2) == 1
        assert series.bin_indices() == [2]

    def test_merged_range_empty_raises(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=10.0)
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            series.merged_range()

    def test_rejects_bad_bin_width(self):
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=0.0)


class TestDaemonAndCollector:
    def _wire(self, use_diffs=True, bin_width=10.0):
        transport = SimulatedTransport()
        collector = Collector(SCHEMA_2F_SRC_DST, transport, bin_width=bin_width)
        daemon = FlowtreeDaemon(
            "edge-1", SCHEMA_2F_SRC_DST, transport,
            collector_name=collector.name, bin_width=bin_width,
            config=FlowtreeConfig(max_nodes=500), use_diffs=use_diffs,
        )
        return transport, collector, daemon

    def test_bin_rollover_exports_summaries(self):
        transport, collector, daemon = self._wire()
        for t in range(35):
            daemon.consume_record(packet(float(t), "10.0.0.1"))
        daemon.flush()
        assert daemon.stats.bins_exported == 4
        assert collector.poll() == 4
        assert collector.sites == ["edge-1"]
        series = collector.site_series("edge-1")
        assert series.bin_indices() == [0, 1, 2, 3]
        total, per_site = collector.estimate(key2("10.0.0.1", "192.0.2.1"))
        assert total == 35
        assert per_site == {"edge-1": 35}

    def test_daemon_charges_late_records_to_current_bin(self):
        _, _, daemon = self._wire()
        daemon.consume_record(packet(100.0, "10.0.0.1"))
        daemon.consume_record(packet(120.0, "10.0.0.1"))  # rolls over
        daemon.consume_record(packet(50.0, "10.0.0.1"))   # late arrival
        assert daemon.stats.late_records == 1
        assert daemon.current_tree.total_counters().packets == 2

    def test_daemon_consumes_netflow_datagrams(self, flow_records_small):
        transport, collector, daemon = self._wire(bin_width=3600.0)
        datagrams = list(encode_datagrams(flow_records_small, base_time=999.0))
        consumed = daemon.consume_netflow(datagrams)
        assert consumed == len(flow_records_small)
        daemon.flush()
        collector.poll()
        merged = collector.merged()
        assert merged.total_counters().packets == sum(f.packets for f in flow_records_small)

    def test_diff_encoding_reduces_exported_bytes(self):
        # Same heavy flows in every bin: diffs should be much smaller than fulls.
        def drive(use_diffs):
            transport, collector, daemon = self._wire(use_diffs=use_diffs)
            for bin_index in range(5):
                for i in range(200):
                    daemon.consume_record(packet(bin_index * 10.0 + (i % 9), f"10.0.{i % 50}.{i % 200}"))
            daemon.flush()
            collector.poll()
            return daemon.stats.exported_bytes, collector

        with_diffs, collector = drive(True)
        without_diffs, _ = drive(False)
        assert with_diffs < without_diffs
        assert collector.merged().total_counters().packets == 1_000

    def test_collector_rejects_unknown_message(self):
        class SizedButWrong:
            payload_bytes = 12

        transport = SimulatedTransport()
        collector = Collector(SCHEMA_2F_SRC_DST, transport)
        transport.register("x")
        transport.send("x", collector.name, SizedButWrong())
        with pytest.raises(DaemonError):
            collector.poll()

    def test_collector_unknown_site_raises(self):
        transport = SimulatedTransport()
        collector = Collector(SCHEMA_2F_SRC_DST, transport)
        with pytest.raises(DaemonError):
            collector.site_series("nowhere")


class TestQueryEngineAndAlerts:
    @pytest.fixture(scope="class")
    def deployment(self):
        sites = ["site-a", "site-b", "site-c"]
        deployment = Deployment(
            SCHEMA_2F_SRC_DST, sites, bin_width=60.0,
            daemon_config=FlowtreeConfig(max_nodes=2_000),
        )
        generator = CaidaLikeTraceGenerator(seed=31, flow_population=5_000)
        packets = list(generator.packets(15_000))
        buckets = split_by_site(packets, sites)
        for name in sites:
            deployment.attach_records(name, buckets[name])
        deployment.run()
        return deployment

    def test_volume_query_sums_sites(self, deployment):
        response = deployment.query_engine.volume(("*", "*"))
        assert response.total == 15_000
        assert set(response.per_site) == {"site-a", "site-b", "site-c"}
        assert sum(response.per_site.values()) == 15_000

    def test_execute_raw_request(self, deployment):
        request = QueryRequest(key_wire=("*", "*"), request_id=42)
        response = deployment.query_engine.execute(request)
        assert response.request_id == 42
        assert response.total == 15_000
        assert response.per_bin  # at least one bin populated

    def test_top_aggregates_and_breakdown(self, deployment):
        top = deployment.query_engine.top_aggregates(5)
        assert len(top) == 5
        assert all(value > 0 for _, value in top)
        breakdown = deployment.query_engine.breakdown(("*", "*"), feature_index=0, step=8)
        assert sum(value for _, value in breakdown) == 15_000

    def test_compare_sites(self, deployment):
        per_site = deployment.query_engine.compare_sites(("*", "*"))
        assert sum(per_site.values()) == 15_000

    def test_site_filtering(self, deployment):
        response = deployment.query_engine.volume(("*", "*"), sites=("site-a",))
        assert response.per_site.keys() == {"site-a"}
        assert response.total < 15_000

    def test_alert_manager_detects_surge(self):
        manager = AlertManager(AlertPolicy(min_popularity=100, warning_change=1.0,
                                           critical_change=3.0))
        quiet = Flowtree(SCHEMA_2F_SRC_DST)
        quiet.add(key2("10.0.0.1", "192.0.2.1"), packets=200)
        surge = Flowtree(SCHEMA_2F_SRC_DST)
        surge.add(key2("10.0.0.1", "192.0.2.1"), packets=200)
        surge.add(key2("172.16.0.9", "203.0.113.5"), packets=5_000)
        assert manager.observe("edge", 0, quiet) == []
        alerts = manager.observe("edge", 1, surge)
        assert alerts, "expected the surge to raise an alert"
        assert alerts[0].severity == "critical"
        assert manager.critical_alerts()
        assert "increased" in alerts[0].describe()

    def test_alert_manager_ignores_small_changes(self):
        manager = AlertManager(AlertPolicy(min_popularity=100, warning_change=1.0))
        a = Flowtree(SCHEMA_2F_SRC_DST)
        a.add(key2("10.0.0.1", "192.0.2.1"), packets=1_000)
        b = Flowtree(SCHEMA_2F_SRC_DST)
        b.add(key2("10.0.0.1", "192.0.2.1"), packets=1_100)
        manager.observe("edge", 0, a)
        assert manager.observe("edge", 1, b) == []

    def test_deployment_transfer_accounting(self, deployment):
        assert deployment.transfer_bytes() > 0
        assert deployment.collector.bytes_received > 0
        assert deployment.collector.bytes_received <= deployment.transfer_bytes()

    def test_deployment_unknown_site(self, deployment):
        with pytest.raises(DaemonError):
            deployment.site("atlantis")

    def test_deployment_requires_sites(self):
        with pytest.raises(DaemonError):
            Deployment(SCHEMA_2F_SRC_DST, [])
