"""Tests for the Flowtree update path, queries and structural invariants."""

import pytest

from helpers import SimpleRecord, key4, make_record
from repro.core.config import FlowtreeConfig
from repro.core.errors import QueryError, SchemaMismatchError
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.features.ipaddr import ipv4_to_int
from repro.features.schema import SCHEMA_1F_SRC, SCHEMA_2F_SRC_DST, SCHEMA_4F


class TestUpdatePath:
    def test_single_record_creates_node(self, empty_tree_4f):
        record = make_record()
        empty_tree_4f.add_record(record)
        key = FlowKey.from_record(SCHEMA_4F, record)
        assert key in empty_tree_4f
        assert empty_tree_4f.complementary_counters(key).packets == 1
        assert empty_tree_4f.node_count() == 2  # root + flow

    def test_repeated_record_increments_in_place(self, empty_tree_4f):
        record = make_record(packets=3, bytes=300)
        for _ in range(5):
            empty_tree_4f.add_record(record)
        key = FlowKey.from_record(SCHEMA_4F, record)
        counters = empty_tree_4f.complementary_counters(key)
        assert counters.packets == 15
        assert counters.bytes == 1_500
        assert counters.flows == 5
        assert empty_tree_4f.node_count() == 2
        assert empty_tree_4f.stats.inserts == 1

    def test_bytes_ignored_when_disabled(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=100, count_bytes=False))
        tree.add_record(make_record(bytes=5_000))
        assert tree.total_counters().bytes == 0

    def test_add_records_returns_count(self, empty_tree_4f):
        consumed = empty_tree_4f.add_records(make_record(sport=port) for port in range(100, 110))
        assert consumed == 10
        assert empty_tree_4f.stats.updates == 10

    def test_add_generalized_key_directly(self, empty_tree_4f):
        aggregate = key4("10.0.0.0/8", "*", "*", "*")
        empty_tree_4f.add(aggregate, packets=7)
        assert aggregate in empty_tree_4f
        assert empty_tree_4f.estimate(aggregate).value() == 7

    def test_new_specific_node_lands_under_matching_aggregate(self):
        # Use the reverse-field-order policy, whose canonical chain passes
        # through (src/8, *, *, *), so the aggregate below is chain-aligned.
        tree = Flowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=1_000, policy="reverse-field-order")
        )
        aggregate = key4("10.0.0.0/8", "*", "*", "*")
        tree.add(aggregate, packets=5)
        record = make_record(src="10.9.9.9")
        tree.add_record(record)
        flow_key = FlowKey.from_record(SCHEMA_4F, record)
        node = tree._get_node(flow_key)
        assert node.parent.key == aggregate

    def test_conservation_of_totals(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=256))
        tree.add_records(packet_stream_small)
        totals = tree.total_counters()
        assert totals.packets == len(packet_stream_small)
        assert totals.bytes == sum(p.bytes for p in packet_stream_small)
        assert totals.flows == len(packet_stream_small)

    def test_node_budget_enforced(self, packet_stream_small):
        config = FlowtreeConfig(max_nodes=128)
        tree = Flowtree(SCHEMA_4F, config)
        tree.add_records(packet_stream_small)
        assert len(tree) <= config.max_nodes
        assert tree.stats.compactions > 0
        assert tree.stats.folded_nodes > 0

    def test_unbounded_tree_keeps_every_flow(self, packet_stream_small, unbounded_config):
        tree = Flowtree(SCHEMA_4F, unbounded_config)
        tree.add_records(packet_stream_small)
        distinct = len({p.five_tuple for p in packet_stream_small})
        assert len(tree) == distinct + 1  # + root
        assert tree.stats.compactions == 0

    def test_structure_remains_valid_under_compaction(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=100, victim_batch=16))
        tree.add_records(packet_stream_small)
        tree.validate()

    def test_one_feature_schema(self):
        tree = Flowtree(SCHEMA_1F_SRC, FlowtreeConfig(max_nodes=64))
        for i in range(500):
            tree.add_record(SimpleRecord(
                src_ip=ipv4_to_int("10.0.0.0") + i, dst_ip=0, src_port=0, dst_port=0
            ))
        assert len(tree) <= 64
        total = tree.total_counters()
        assert total.packets == 500
        tree.validate()


class TestQueries:
    @pytest.fixture
    def populated(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=10_000))
        # Two heavy flows inside 10.0.0.0/8, one light flow elsewhere.
        tree.add_record(make_record(src="10.1.1.1", dport=443, packets=100, bytes=10_000))
        tree.add_record(make_record(src="10.1.1.2", dport=443, packets=50, bytes=5_000))
        tree.add_record(make_record(src="192.0.2.77", dport=80, packets=5, bytes=500))
        return tree

    def test_exact_node_estimate(self, populated):
        key = FlowKey.from_record(SCHEMA_4F, make_record(src="10.1.1.1", dport=443))
        estimate = populated.estimate(key)
        assert estimate.exact_node
        assert estimate.value("packets") == 100
        assert estimate.value("bytes") == 10_000

    def test_aggregate_estimate_sums_descendants(self, populated):
        aggregate = key4("10.0.0.0/8", "*", "*", "*")
        estimate = populated.estimate(aggregate)
        assert estimate.value("packets") == 150
        assert not estimate.exact_node
        assert estimate.from_descendants.packets == 150

    def test_root_estimate_counts_everything(self, populated):
        root = FlowKey.root(SCHEMA_4F)
        assert populated.estimate(root).value("packets") == 155

    def test_absent_specific_flow_estimates_near_zero(self, populated):
        missing = FlowKey.from_record(SCHEMA_4F, make_record(src="172.16.0.1", dport=22))
        estimate = populated.estimate(missing)
        assert not estimate.exact_node
        assert estimate.value("packets") <= 1

    def test_off_trajectory_query_scans_all_nodes(self, populated):
        # dst port /12-style range is not on the round-robin trajectory.
        odd_key = key4("10.0.0.0/8", "*", "*", "443")
        estimate = populated.estimate(odd_key)
        assert estimate.value("packets") == 150

    def test_query_arity_mismatch_raises(self, populated):
        with pytest.raises(QueryError):
            populated.estimate(FlowKey.root(SCHEMA_2F_SRC_DST))

    def test_popularity_shortcut(self, populated):
        assert populated.popularity(key4("10.0.0.0/8", "*", "*", "*")) == 150
        assert populated.popularity(key4("10.0.0.0/8", "*", "*", "*"), "bytes") == 15_000

    def test_subtree_counters_requires_kept_key(self, populated):
        with pytest.raises(QueryError):
            populated.subtree_counters(key4("172.16.0.0/12", "*", "*", "*"))

    def test_top_orders_by_complementary_popularity(self, populated):
        top = populated.top(2)
        assert top[0][1] == 100
        assert top[1][1] == 50

    def test_heavy_keys(self, populated):
        heavy = populated.heavy_keys(0.5)
        values = {key.pretty() for key in heavy}
        # The 100-packet flow (64% of traffic) and the root qualify.
        assert any("10.1.1.1/32" in value for value in values)
        assert FlowKey.root(SCHEMA_4F) in heavy

    def test_heavy_keys_threshold_validation(self, populated):
        with pytest.raises(QueryError):
            populated.heavy_keys(0.0)

    def test_heavy_keys_empty_tree(self, empty_tree_4f):
        assert empty_tree_4f.heavy_keys(0.1) == []


class TestCopyValidateRepr:
    def test_copy_is_deep(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=200))
        tree.add_records(packet_stream_small[:1_000])
        clone = tree.copy()
        assert clone.total_counters() == tree.total_counters()
        assert len(clone) == len(tree)
        # Mutating the clone leaves the original untouched.
        clone.add_record(make_record())
        assert clone.total_counters().packets == tree.total_counters().packets + 1

    def test_validate_detects_corruption(self, empty_tree_4f):
        empty_tree_4f.add_record(make_record())
        key = FlowKey.from_record(SCHEMA_4F, make_record())
        node = empty_tree_4f._get_node(key)
        node.parent = None  # corrupt the parent link
        with pytest.raises(QueryError):
            empty_tree_4f.validate()

    def test_root_cannot_be_removed(self, empty_tree_4f):
        with pytest.raises(QueryError):
            empty_tree_4f._remove_node(empty_tree_4f.root)

    def test_repr(self, empty_tree_4f):
        empty_tree_4f.add_record(make_record())
        text = repr(empty_tree_4f)
        assert "4f" in text and "nodes=2" in text

    def test_merge_rejects_schema_mismatch(self, empty_tree_4f):
        other = Flowtree(SCHEMA_2F_SRC_DST)
        with pytest.raises(SchemaMismatchError):
            empty_tree_4f.merge(other)

    def test_merge_rejects_non_flowtree(self, empty_tree_4f):
        with pytest.raises(SchemaMismatchError):
            empty_tree_4f.merge({"not": "a tree"})
