"""Edge-case tests for the flowlint AST helpers (``repro.devtools.lint.helpers``).

Every rule — per-file and project-wide — leans on these few primitives,
so their corner cases (qualname conventions for nested and class-nested
functions, alias-hostile attribute chains, scope boundaries) are pinned
here once instead of re-proven inside each rule's fixtures.
"""

import ast
import textwrap

from repro.devtools.lint.engine import check_source
from repro.devtools.lint.helpers import (
    attribute_chain,
    call_name,
    iter_scope_nodes,
    iter_scopes,
    parent_map,
    scope_calls,
    string_value,
)


def parse(source):
    return ast.parse(textwrap.dedent(source))


class TestIterScopes:
    def test_module_scope_comes_first(self):
        scopes = list(iter_scopes(parse("x = 1")))
        assert scopes[0][0] == "<module>"
        assert isinstance(scopes[0][1], ast.Module)

    def test_class_nested_method_qualname(self):
        tree = parse(
            """
            class Outer:
                def method(self):
                    pass

                class Inner:
                    def leaf(self):
                        pass
            """
        )
        names = [name for name, _ in iter_scopes(tree)]
        assert names == ["<module>", "Outer.method", "Outer.Inner.leaf"]

    def test_nested_function_qualname_uses_locals_marker(self):
        tree = parse(
            """
            def outer():
                def inner():
                    def innermost():
                        pass
            """
        )
        names = [name for name, _ in iter_scopes(tree)]
        assert names == [
            "<module>",
            "outer",
            "outer.<locals>.inner",
            "outer.<locals>.inner.<locals>.innermost",
        ]

    def test_function_nested_in_method(self):
        tree = parse(
            """
            class Worker:
                def run(self):
                    def step():
                        pass
            """
        )
        names = [name for name, _ in iter_scopes(tree)]
        assert "Worker.run.<locals>.step" in names

    def test_async_functions_are_scopes(self):
        tree = parse(
            """
            async def pump():
                async def drain():
                    pass
            """
        )
        names = [name for name, _ in iter_scopes(tree)]
        assert names == ["<module>", "pump", "pump.<locals>.drain"]


class TestIterScopeNodes:
    def test_does_not_descend_into_nested_functions(self):
        tree = parse(
            """
            def outer():
                a = 1
                def inner():
                    b = 2
            """
        )
        outer = next(node for name, node in iter_scopes(tree) if name == "outer")
        names = {
            node.id
            for node in iter_scope_nodes(outer)
            if isinstance(node, ast.Name)
        }
        assert "a" in names
        assert "b" not in names  # inner's body is a separate scope

    def test_nested_function_node_itself_is_yielded(self):
        tree = parse(
            """
            def outer():
                def inner():
                    pass
            """
        )
        outer = next(node for name, node in iter_scopes(tree) if name == "outer")
        nested = [
            node for node in iter_scope_nodes(outer)
            if isinstance(node, ast.FunctionDef)
        ]
        assert [node.name for node in nested] == ["inner"]


class TestAttributeChain:
    def test_simple_chain(self):
        node = parse("a.b.c").body[0].value
        assert attribute_chain(node) == ["a", "b", "c"]

    def test_call_in_middle_breaks_chain(self):
        node = parse("a.b().c").body[0].value
        assert attribute_chain(node) is None

    def test_subscript_base_breaks_chain(self):
        node = parse("a[0].b").body[0].value
        assert attribute_chain(node) is None

    def test_bare_name(self):
        node = parse("a").body[0].value
        assert attribute_chain(node) == ["a"]


class TestSmallHelpers:
    def test_call_name_for_plain_and_attribute_calls(self):
        plain = parse("foo()").body[0].value
        dotted = parse("x.bar()").body[0].value
        subscripted = parse("table[0]()").body[0].value
        assert call_name(plain) == "foo"
        assert call_name(dotted) == "bar"
        assert call_name(subscripted) is None

    def test_scope_calls_is_lexical(self):
        tree = parse(
            """
            def outer():
                def inner():
                    target()
            """
        )
        outer = next(node for name, node in iter_scopes(tree) if name == "outer")
        inner = next(
            node for name, node in iter_scopes(tree)
            if name == "outer.<locals>.inner"
        )
        assert not scope_calls(outer, ("target",))
        assert scope_calls(inner, ("target",))

    def test_string_value(self):
        assert string_value(parse("'hi'").body[0].value) == "hi"
        assert string_value(parse("42").body[0].value) is None

    def test_parent_map_links_child_to_parent(self):
        tree = parse("def f():\n    return 1")
        parents = parent_map(tree)
        func = tree.body[0]
        ret = func.body[0]
        assert parents[ret] is func
        assert parents[func] is tree


class TestSuppressionsForProjectRules:
    """`# flowlint: disable=` must silence the project-wide rules too —
    their findings are filtered through the same per-file suppression
    table the per-file rules use."""

    SOURCE = """
        import time

        async def poll_loop():
            time.sleep(0.1){comment}
        """

    def lint(self, comment=""):
        source = textwrap.dedent(self.SOURCE).replace("{comment}", comment)
        return check_source(source, "src/repro/distributed/sample.py")

    def test_project_rule_finding_without_comment(self):
        assert "blocking-in-async" in {f.rule for f in self.lint()}

    def test_named_disable_silences_project_rule(self):
        assert self.lint("  # flowlint: disable=blocking-in-async") == []

    def test_disable_all_silences_project_rule(self):
        assert self.lint("  # flowlint: disable=all") == []

    def test_disable_list_mixing_file_and_project_rules(self):
        findings = self.lint(
            "  # flowlint: disable=exception-hygiene,blocking-in-async"
        )
        assert findings == []
