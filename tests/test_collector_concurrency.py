"""Regression tests for the locks flowlint's concurrency rules demanded.

Two true positives came out of the first project-wide lint (PR 10):

* ``Supervisor.health_snapshot`` read ``_health`` without ``_check_lock``
  while the heartbeat thread mutates the records mid-pass
  (lock-discipline), and
* ``Collector`` was mutated from the supervisor thread, the query path
  and the main replay loop with no lock at all (thread-confinement);
  every entry point now serializes on an internal ``RLock``.

These tests pin the fixes mechanically: they hold the lock from one
thread and assert the fixed accessor actually blocks on it, then hammer
a collector from several threads and check the outcome matches a serial
run.  If someone removes a ``with self._lock:`` the pin tests go red
before the race ever has to fire.
"""

import threading
import time

from helpers import key2, make_timed_record
from repro.core.config import FlowtreeConfig
from repro.distributed import (
    Collector,
    FlowtreeDaemon,
    SimulatedTransport,
    Supervisor,
)
from repro.features.schema import SCHEMA_2F_SRC_DST


def _loaded_collector(count=90, bins=3):
    """A memory-store collector with ``count`` summaries pending in its inbox."""
    transport = SimulatedTransport()
    collector = Collector(SCHEMA_2F_SRC_DST, transport, bin_width=10.0)
    daemon = FlowtreeDaemon(
        "edge-1", SCHEMA_2F_SRC_DST, transport,
        collector_name=collector.name, bin_width=10.0,
        config=FlowtreeConfig(max_nodes=500),
    )
    for i in range(count):
        daemon.consume_record(
            make_timed_record(
                timestamp=(i % bins) * 10.0,
                src=f"10.0.0.{i % 5 or 1}",
                dst="192.0.2.1",
            )
        )
    daemon.flush()
    return collector


def _blocks_until_released(lock, call):
    """Assert ``call`` blocks while ``lock`` is held by another thread.

    Returns the call's result once the holder releases.  Deterministic by
    construction: the callee *cannot* finish while the lock is held, so
    the ``is_alive`` assertion never flakes — it can only fail if the
    lock was removed from the accessor under test.
    """
    acquired = threading.Event()
    release = threading.Event()

    def hold():
        with lock:
            acquired.set()
            release.wait(timeout=10.0)

    holder = threading.Thread(target=hold)
    holder.start()
    assert acquired.wait(timeout=10.0)
    result = {}

    def run():
        result["value"] = call()

    caller = threading.Thread(target=run)
    caller.start()
    caller.join(timeout=0.2)
    try:
        assert caller.is_alive(), "accessor did not block on the lock"
    finally:
        release.set()
        caller.join(timeout=10.0)
        holder.join(timeout=10.0)
    assert not caller.is_alive()
    return result["value"]


class TestSupervisorSnapshotLock:
    def test_health_snapshot_blocks_on_check_lock(self):
        """The lock-discipline fix: no torn reads of ``_health`` mid-pass."""
        collector = _loaded_collector(count=10, bins=1)
        supervisor = Supervisor(collector)
        snapshot = _blocks_until_released(
            supervisor._check_lock, supervisor.health_snapshot
        )
        assert collector.name in snapshot

    def test_all_healthy_blocks_on_check_lock(self):
        collector = _loaded_collector(count=10, bins=1)
        supervisor = Supervisor(collector)
        healthy = _blocks_until_released(
            supervisor._check_lock, lambda: supervisor.all_healthy
        )
        assert healthy is True

    def test_snapshot_consistent_under_heartbeat(self):
        """Snapshots taken while the heartbeat mutates health never tear:
        a pass that succeeded shows zero consecutive failures."""
        collector = _loaded_collector(count=30, bins=1)
        supervisor = Supervisor(collector, config=None)
        supervisor.start()
        try:
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                snapshot = supervisor.health_snapshot()[collector.name]
                if snapshot["healthy"]:
                    assert snapshot["consecutive_failures"] == 0
                    assert snapshot["last_error"] is None
                if snapshot["messages_processed"] == 30:
                    break
            assert supervisor.health_snapshot()[collector.name]["healthy"]
        finally:
            supervisor.stop()


class TestCollectorEntryPointLock:
    def test_ingestion_entry_points_block_on_collector_lock(self):
        """The thread-confinement fix: poll/ingest serialize on ``_lock``."""
        collector = _loaded_collector()
        processed = _blocks_until_released(collector._lock, collector.poll)
        assert processed == collector.messages_processed > 0

    def test_query_entry_points_block_on_collector_lock(self):
        collector = _loaded_collector()
        collector.poll()
        sites = _blocks_until_released(collector._lock, lambda: collector.sites)
        assert sites == ["edge-1"]
        total = _blocks_until_released(
            collector._lock,
            lambda: collector.estimate(key2("10.0.0.1", "192.0.2.1"))[0],
        )
        assert total > 0

    def test_reentrant_entry_points_still_nest(self):
        """Entry points call each other (``evict_before`` -> ``site_series``);
        the lock must be reentrant or the fix would deadlock the fixed code."""
        collector = _loaded_collector()
        collector.poll()
        assert collector.evict_before(1) >= 0
        assert collector.bins_for("edge-1") != []

    def test_hammered_collector_matches_serial_run(self):
        """Threads racing poll against queries converge on the serial result."""
        serial = _loaded_collector()
        serial.poll()
        expected_processed = serial.messages_processed
        expected_sites = serial.sites
        expected_bins = serial.bins_for("edge-1")
        expected_total = serial.estimate(key2("10.0.0.1", "192.0.2.1"))[0]

        concurrent = _loaded_collector()
        errors = []
        started = threading.Barrier(4)

        def pound(fn):
            try:
                started.wait(timeout=10.0)
                for _ in range(25):
                    fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def query():
            if concurrent.sites:
                concurrent.estimate_many([key2("10.0.0.1", "192.0.2.1")])

        threads = [
            threading.Thread(target=pound, args=(concurrent.poll,)),
            threading.Thread(target=pound, args=(concurrent.poll,)),
            threading.Thread(target=pound, args=(query,)),
            threading.Thread(target=pound, args=(lambda: concurrent.pending_backlog,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert concurrent.messages_processed == expected_processed
        assert concurrent.sites == expected_sites
        assert concurrent.bins_for("edge-1") == expected_bins
        assert concurrent.estimate(key2("10.0.0.1", "192.0.2.1"))[0] == expected_total
