"""Tests for the deterministic fault-injection layer (:mod:`repro.distributed.faults`).

Covers the :class:`FaultPlan` scheduling contract (seeded determinism,
per-seam independence, ``after``/``max_fires`` bounds, validation) and each
injection seam in isolation: store commit failures, torn segment writes,
the collector kill switch, the parallel worker crash, and the hard
zero-overhead requirement that a plan with nothing armed changes nothing.
The end-to-end combinations live in ``tests/test_chaos.py``.
"""

import pytest

from helpers import make_record, make_timed_record
from repro.core import ParallelShardedFlowtree, ShardedFlowtree, to_bytes
from repro.core.config import FlowtreeConfig
from repro.core.errors import (
    CollectorUnavailableError,
    ConfigurationError,
    FaultError,
    FlowtreeError,
)
from repro.distributed import (
    FAULT_COLLECTOR_KILL,
    FAULT_STORE_COMMIT,
    FAULT_STORE_TORN_WRITE,
    FAULT_WORKER_CRASH,
    Collector,
    FaultPlan,
    FlowtreeDaemon,
    MemoryStore,
    SimulatedTransport,
)
from repro.distributed.messages import SummaryMessage
from repro.distributed.stores import SegmentFileStore
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F

SEAM = "test.seam"
OTHER = "test.other-seam"


def _schedule(plan, name, occurrences=20):
    return [plan.should_fire(name) for _ in range(occurrences)]


class TestFaultPlanScheduling:
    def test_same_seed_same_schedule(self):
        first = FaultPlan(seed=3).arm(SEAM, probability=0.4)
        second = FaultPlan(seed=3).arm(SEAM, probability=0.4)
        assert _schedule(first, SEAM) == _schedule(second, SEAM)
        assert first.fired() == second.fired()
        assert first.fires(SEAM) == second.fires(SEAM) > 0

    def test_different_seeds_differ(self):
        schedules = {
            tuple(_schedule(FaultPlan(seed=seed).arm(SEAM, probability=0.5), SEAM, 40))
            for seed in range(6)
        }
        assert len(schedules) > 1

    def test_probability_one_always_fires(self):
        plan = FaultPlan(seed=0).arm(SEAM)
        assert _schedule(plan, SEAM, 5) == [True] * 5

    def test_unarmed_never_fires_but_counts_occurrences(self):
        plan = FaultPlan(seed=0)
        assert _schedule(plan, SEAM, 4) == [False] * 4
        assert plan.occurrences(SEAM) == 4
        assert plan.fires(SEAM) == 0

    def test_after_skips_initial_occurrences(self):
        plan = FaultPlan(seed=0).arm(SEAM, after=2)
        assert _schedule(plan, SEAM, 4) == [False, False, True, True]

    def test_max_fires_bounds_the_fault(self):
        plan = FaultPlan(seed=0).arm(SEAM, max_fires=2)
        assert _schedule(plan, SEAM, 6) == [True, True, False, False, False, False]
        assert plan.fires(SEAM) == 2
        assert plan.occurrences(SEAM) == 6

    def test_disarm_silences_the_seam(self):
        plan = FaultPlan(seed=0).arm(SEAM)
        assert plan.should_fire(SEAM)
        plan.disarm(SEAM)
        assert not plan.should_fire(SEAM)
        assert plan.fires(SEAM) == 1  # history survives the disarm

    def test_seams_are_independent(self):
        """Interleaving another seam's occurrences must not shift this one's."""
        alone = FaultPlan(seed=11).arm(SEAM, probability=0.5)
        expected = _schedule(alone, SEAM, 15)
        mixed = FaultPlan(seed=11).arm(SEAM, probability=0.5).arm(OTHER, probability=0.5)
        got = []
        for _ in range(15):
            mixed.should_fire(OTHER)
            got.append(mixed.should_fire(SEAM))
            mixed.should_fire(OTHER)
        assert got == expected

    def test_arm_validation(self):
        plan = FaultPlan()
        for probability in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError, match="probability"):
                plan.arm(SEAM, probability=probability)
        with pytest.raises(ConfigurationError, match="max_fires"):
            plan.arm(SEAM, max_fires=-1)
        with pytest.raises(ConfigurationError, match="after"):
            plan.arm(SEAM, after=-1)

    def test_snapshot_and_fire_log(self):
        plan = FaultPlan(seed=0).arm(SEAM, max_fires=1, after=1)
        _schedule(plan, SEAM, 3)
        plan.should_fire(OTHER)
        assert plan.snapshot() == {
            SEAM: {"occurrences": 3, "fires": 1},
            OTHER: {"occurrences": 1, "fires": 0},
        }
        assert plan.fired() == [(SEAM, 2)]

    def test_inject_builds_a_fault_error(self):
        plan = FaultPlan(seed=0)
        error = plan.inject(FAULT_STORE_COMMIT, "commit of bin 3")
        assert isinstance(error, FaultError)
        assert isinstance(error, FlowtreeError)
        assert FAULT_STORE_COMMIT in str(error)
        assert "commit of bin 3" in str(error)

    def test_rng_for_is_stable_per_seam(self):
        plan = FaultPlan(seed=9)
        rng = plan.rng_for(SEAM)
        assert plan.rng_for(SEAM) is rng
        assert plan.rng_for(OTHER) is not rng
        # Same seed + name on a fresh plan reproduces the same stream.
        assert FaultPlan(seed=9).rng_for(SEAM).random() == FaultPlan(seed=9).rng_for(SEAM).random()


def _tree(pairs):
    from repro.core.flowtree import Flowtree
    from repro.core.key import FlowKey

    tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=500))
    for (src, dst), count in pairs:
        tree.add(FlowKey.from_wire(SCHEMA_2F_SRC_DST, (src, dst)), packets=count)
    return tree


class TestStoreCommitSeam:
    def test_memory_store_commit_fails_then_recovers(self):
        store = MemoryStore()
        store.attach_faults(FaultPlan(seed=0).arm(FAULT_STORE_COMMIT, max_fires=1))
        tree = _tree([(("10.0.0.1", "192.0.2.1"), 5)])
        with pytest.raises(FaultError, match=FAULT_STORE_COMMIT):
            store.put("site", 0, tree)
        assert store.bin_indices("site") == []
        store.put("site", 0, tree)  # plan exhausted: the retry commits
        assert store.bin_indices("site") == [0]

    def test_segment_store_commit_fails_before_any_write(self, tmp_path):
        store = SegmentFileStore(tmp_path / "commit")
        store.attach_faults(FaultPlan(seed=0).arm(FAULT_STORE_COMMIT, max_fires=1))
        tree = _tree([(("10.0.0.1", "192.0.2.1"), 5)])
        with pytest.raises(FaultError, match=FAULT_STORE_COMMIT):
            store.put("site", 0, tree)
        store.close()
        assert SegmentFileStore(tmp_path / "commit").bin_indices("site") == []


class TestTornWriteSeam:
    def test_torn_write_is_invisible_after_reopen(self, tmp_path):
        path = tmp_path / "torn"
        store = SegmentFileStore(path)
        store.attach_faults(
            FaultPlan(seed=0).arm(FAULT_STORE_TORN_WRITE, after=1, max_fires=1)
        )
        first = _tree([(("10.0.0.1", "192.0.2.1"), 3)])
        second = _tree([(("10.0.0.2", "192.0.2.1"), 7)])
        store.put("site", 0, first)
        with pytest.raises(FaultError, match=FAULT_STORE_TORN_WRITE):
            store.put("site", 1, second)
        store.close()

        reopened = SegmentFileStore(path)
        assert reopened.bin_indices("site") == [0]  # the torn record never became visible
        assert to_bytes(reopened.get("site", 0)) == to_bytes(first)
        reopened.put("site", 1, second)  # the retry lands cleanly after the tear
        assert to_bytes(reopened.get("site", 1)) == to_bytes(second)
        reopened.close()


def _feed_collector(faults=None, count=120, bins=3):
    """A collector plus a daemon that already exported ``bins`` summaries."""
    transport = SimulatedTransport()
    collector = Collector(SCHEMA_2F_SRC_DST, transport, bin_width=10.0, faults=faults)
    daemon = FlowtreeDaemon(
        "edge-1", SCHEMA_2F_SRC_DST, transport,
        collector_name=collector.name, bin_width=10.0,
        config=FlowtreeConfig(max_nodes=500),
    )
    for i in range(count):
        daemon.consume_record(
            make_timed_record(
                timestamp=(i % bins) * 10.0,
                src=f"10.0.0.{i % 7 or 1}",
                packets=1 + i % 3,
            )
        )
    daemon.flush()
    return collector


class TestCollectorKillSeam:
    def test_kill_mid_ingest_then_revive_is_exactly_once(self):
        baseline = _feed_collector()
        baseline.poll()

        plan = FaultPlan(seed=0).arm(FAULT_COLLECTOR_KILL, after=1, max_fires=1)
        collector = _feed_collector(faults=plan)
        with pytest.raises(CollectorUnavailableError, match="killed mid-ingest"):
            collector.poll()
        assert not collector.healthy
        assert "collector.kill" in collector.kill_reason
        assert collector.pending_backlog > 0  # acked messages waiting for retry
        with pytest.raises(CollectorUnavailableError):
            collector.site_series("edge-1")
        with pytest.raises(CollectorUnavailableError):
            collector.ping()
        with pytest.raises(CollectorUnavailableError):
            collector.poll()

        collector.revive()
        assert collector.ping()
        collector.poll()
        assert collector.pending_backlog == 0
        assert collector.messages_processed == baseline.messages_processed
        assert to_bytes(collector.merged()) == to_bytes(baseline.merged())

    def test_store_commit_failure_mid_poll_retries_the_same_message(self):
        baseline = _feed_collector()
        baseline.poll()

        plan = FaultPlan(seed=0).arm(FAULT_STORE_COMMIT, after=1, max_fires=1)
        collector = _feed_collector(faults=plan)
        with pytest.raises(FaultError, match=FAULT_STORE_COMMIT):
            collector.poll()
        assert collector.healthy  # the store failed, not the collector
        assert collector.pending_backlog > 0
        collector.poll()  # plan exhausted: backlog drains, nothing lost
        assert collector.messages_processed == baseline.messages_processed
        assert to_bytes(collector.merged()) == to_bytes(baseline.merged())

    def test_corrupt_payload_is_counted_and_dropped(self):
        transport = SimulatedTransport()
        collector = Collector(SCHEMA_2F_SRC_DST, transport, bin_width=10.0)
        transport.register("edge-1")
        transport.send(
            "edge-1", collector.name,
            SummaryMessage("edge-1", 0, 0.0, 10.0, "full", b"\xff not a summary"),
        )
        good = _tree([(("10.0.0.1", "192.0.2.1"), 2)])
        transport.send(
            "edge-1", collector.name,
            SummaryMessage("edge-1", 1, 10.0, 20.0, "full", to_bytes(good), sequence=0),
        )
        assert collector.poll() == 1  # the good one, behind the poison
        assert collector.corrupt_dropped == 1
        assert collector.pending_backlog == 0
        assert collector.site_series("edge-1").bin_indices() == [1]

    def test_kill_blocks_queries_until_revive(self):
        collector = _feed_collector()
        collector.poll()
        collector.kill("maintenance")
        with pytest.raises(CollectorUnavailableError, match="maintenance"):
            collector.merged()
        with pytest.raises(CollectorUnavailableError):
            collector.ingest(
                SummaryMessage("edge-1", 9, 90.0, 100.0, "full", b"", sequence=99)
            )
        collector.revive()
        assert collector.healthy
        assert collector.merged() is not None


class TestWorkerCrashSeam:
    def test_injected_worker_crash_is_byte_identical(self):
        records = [
            make_record(src=f"10.1.{i % 30}.{i % 200 or 1}", sport=1000 + i % 17)
            for i in range(400)
        ]
        reference = ShardedFlowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_shards=2)
        reference.add_batch(records, batch_size=64)

        plan = FaultPlan(seed=0).arm(FAULT_WORKER_CRASH, after=2, max_fires=1)
        with ParallelShardedFlowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=None), num_workers=2, faults=plan
        ) as parallel:
            parallel.add_batch(records, batch_size=64)
            assert plan.fires(FAULT_WORKER_CRASH) == 1
            assert parallel.stats_snapshot()["worker_restarts"] == 1
            assert parallel.total_counters() == reference.total_counters()
            assert to_bytes(parallel.merged_tree()) == to_bytes(reference.merged_tree())


class TestDisabledPlanIsInert:
    def test_armed_nothing_changes_nothing(self):
        plain = _feed_collector()
        plain.poll()
        quiet = _feed_collector(faults=FaultPlan(seed=0))  # nothing armed
        quiet.poll()
        assert quiet.messages_processed == plain.messages_processed
        assert quiet.bytes_received == plain.bytes_received
        assert to_bytes(quiet.merged()) == to_bytes(plain.merged())

    def test_reopen_heals_killed_durable_collector(self, tmp_path):
        from repro.distributed import CollectorConfig

        config = CollectorConfig(
            bin_width=10.0, store="file", store_path=str(tmp_path / "seg")
        )
        transport = SimulatedTransport()
        collector = Collector(SCHEMA_2F_SRC_DST, transport, config=config)
        collector.kill("test")
        assert not collector.healthy
        collector.reopen()
        assert collector.healthy
        assert collector.ping()
        collector.close()
