"""The CI benchmark-regression checker (scripts/check_bench_regression.py).

The checker gates merges on *relative* claim metrics (``rel_*`` entries in
each benchmark's ``extra_info`` — speedup ratios measured in-process, so
robust to runner variance) and reports absolute mean wall times warn-only.
The baseline is promoted only when a run passes, so a regression keeps
being compared against the last good run.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _write(path: Path, means: dict, extra: dict = None) -> Path:
    document = {
        "benchmarks": [
            {
                "name": name,
                "stats": {"mean": mean},
                "extra_info": (extra or {}).get(name, {}),
            }
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(document))
    return path


class TestCompare:
    def test_buckets_regressions_improvements_and_new(self):
        previous = {"a": 1.0, "b": 1.0, "c": 1.0}
        current = {"a": 1.5, "b": 0.5, "c": 1.05, "d": 2.0}
        report = check.compare(previous, current, threshold=0.2)
        assert [row[0] for row in report["regressed"]] == ["a"]
        assert [row[0] for row in report["improved"]] == ["b"]
        assert [row[0] for row in report["steady"]] == ["c"]
        assert [name for name, _ in report["unmatched"]] == ["d"]

    def test_threshold_is_inclusive_boundary(self):
        report = check.compare({"a": 1.0}, {"a": 1.2}, threshold=0.2)
        assert not report["regressed"]          # exactly 20% slower is tolerated
        report = check.compare({"a": 1.0}, {"a": 1.2000001}, threshold=0.2)
        assert report["regressed"]

    def test_relative_direction_is_higher_is_better(self):
        previous = {"b::rel_speedup": 4.0, "b::rel_other": 2.0}
        current = {"b::rel_speedup": 3.0, "b::rel_other": 2.6, "b::rel_new": 1.0}
        report = check.compare_relative(previous, current, threshold=0.2)
        assert [row[0] for row in report["regressed"]] == ["b::rel_speedup"]
        assert [row[0] for row in report["improved"]] == ["b::rel_other"]
        assert [name for name, _ in report["unmatched"]] == ["b::rel_new"]

    def test_relative_flags_metrics_missing_from_current(self):
        report = check.compare_relative(
            {"b::rel_speedup": 4.0}, {}, threshold=0.2
        )
        assert report["missing"] == [("b::rel_speedup", 4.0)]


class TestLoaders:
    def test_loader_reads_pytest_benchmark_schema(self, tmp_path):
        path = _write(tmp_path / "bench.json", {"x": 0.25, "y": 3.5})
        assert check.load_benchmark_means(path) == {"x": 0.25, "y": 3.5}

    def test_relative_loader_filters_prefix_and_non_numbers(self, tmp_path):
        path = _write(
            tmp_path / "bench.json",
            {"x": 1.0},
            extra={"x": {"rel_speedup": 2.5, "note": "free-form",
                         "rel_flag": True, "scale": 4}},
        )
        assert check.load_relative_metrics(path) == {"x::rel_speedup": 2.5}


class TestMain:
    def test_mean_slowdown_is_warn_only(self, tmp_path, capsys):
        """Absolute wall times never gate — shared runners are too noisy."""
        previous = _write(tmp_path / "prev.json", {"bench": 1.0})
        current = _write(tmp_path / "cur.json", {"bench": 2.0})
        assert check.main([str(previous), str(current)]) == 0
        assert "warn: slower" in capsys.readouterr().out

    def test_relative_regression_fails_unless_warn_only(self, tmp_path, capsys):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0},
                          extra={"bench": {"rel_speedup": 4.0}})
        current = _write(tmp_path / "cur.json", {"bench": 1.0},
                         extra={"bench": {"rel_speedup": 2.0}})
        assert check.main([str(previous), str(current)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert check.main([str(previous), str(current), "--warn-only"]) == 0

    def test_clean_run_passes(self, tmp_path, capsys):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0},
                          extra={"bench": {"rel_speedup": 4.0}})
        current = _write(tmp_path / "cur.json", {"bench": 1.1},
                         extra={"bench": {"rel_speedup": 4.1}})
        assert check.main([str(previous), str(current)]) == 0
        assert "no claim-metric regression" in capsys.readouterr().out

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        current = _write(tmp_path / "cur.json", {"bench": 1.0})
        assert check.main([str(tmp_path / "absent.json"), str(current)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_vanished_claim_metric_fails_the_gate(self, tmp_path, capsys):
        """Renaming or breaking a gated benchmark must not disarm the gate."""
        previous = _write(tmp_path / "prev.json", {"bench": 1.0},
                          extra={"bench": {"rel_speedup": 4.0}})
        baseline_before = previous.read_text()
        current = _write(tmp_path / "cur.json", {"renamed": 1.0})
        assert check.main([str(previous), str(current),
                           "--promote-to", str(previous)]) == 1
        assert "MISSING" in capsys.readouterr().out
        assert previous.read_text() == baseline_before   # not promoted

    def test_unreadable_input_exits_2(self, tmp_path):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0})
        broken = tmp_path / "cur.json"
        broken.write_text("{not json")
        assert check.main([str(previous), str(broken)]) == 2


class TestPromotion:
    """The baseline must only ever advance to a run that passed."""

    def test_promotes_on_pass(self, tmp_path):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0},
                          extra={"bench": {"rel_speedup": 4.0}})
        current = _write(tmp_path / "cur.json", {"bench": 1.0},
                         extra={"bench": {"rel_speedup": 4.2}})
        assert check.main([str(previous), str(current),
                           "--promote-to", str(previous)]) == 0
        assert json.loads(previous.read_text()) == json.loads(current.read_text())

    def test_promotes_on_first_run_without_baseline(self, tmp_path):
        baseline = tmp_path / "prev.json"
        current = _write(tmp_path / "cur.json", {"bench": 1.0})
        assert check.main([str(baseline), str(current),
                           "--promote-to", str(baseline)]) == 0
        assert json.loads(baseline.read_text()) == json.loads(current.read_text())

    @pytest.mark.parametrize("warn_only", [False, True])
    def test_regressed_run_never_becomes_baseline(self, tmp_path, warn_only):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0},
                          extra={"bench": {"rel_speedup": 4.0}})
        baseline_before = previous.read_text()
        current = _write(tmp_path / "cur.json", {"bench": 1.0},
                         extra={"bench": {"rel_speedup": 1.0}})
        argv = [str(previous), str(current), "--promote-to", str(previous)]
        if warn_only:
            argv.append("--warn-only")
        assert check.main(argv) == (0 if warn_only else 1)
        assert previous.read_text() == baseline_before
