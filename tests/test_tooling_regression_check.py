"""The CI benchmark-regression checker (scripts/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _write(path: Path, means: dict) -> Path:
    document = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(document))
    return path


class TestCompare:
    def test_buckets_regressions_improvements_and_new(self):
        previous = {"a": 1.0, "b": 1.0, "c": 1.0}
        current = {"a": 1.5, "b": 0.5, "c": 1.05, "d": 2.0}
        report = check.compare(previous, current, threshold=0.2)
        assert [row[0] for row in report["regressed"]] == ["a"]
        assert [row[0] for row in report["improved"]] == ["b"]
        assert [row[0] for row in report["steady"]] == ["c"]
        assert [name for name, _ in report["unmatched"]] == ["d"]

    def test_threshold_is_inclusive_boundary(self):
        report = check.compare({"a": 1.0}, {"a": 1.2}, threshold=0.2)
        assert not report["regressed"]          # exactly 20% slower is tolerated
        report = check.compare({"a": 1.0}, {"a": 1.2000001}, threshold=0.2)
        assert report["regressed"]


class TestMain:
    def test_regression_fails_unless_warn_only(self, tmp_path, capsys):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0})
        current = _write(tmp_path / "cur.json", {"bench": 2.0})
        assert check.main([str(previous), str(current)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert check.main([str(previous), str(current), "--warn-only"]) == 0

    def test_clean_run_passes(self, tmp_path, capsys):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0})
        current = _write(tmp_path / "cur.json", {"bench": 1.1})
        assert check.main([str(previous), str(current)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        current = _write(tmp_path / "cur.json", {"bench": 1.0})
        assert check.main([str(tmp_path / "absent.json"), str(current)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_unreadable_input_exits_2(self, tmp_path):
        previous = _write(tmp_path / "prev.json", {"bench": 1.0})
        broken = tmp_path / "cur.json"
        broken.write_text("{not json")
        assert check.main([str(previous), str(broken)]) == 2

    def test_loader_reads_pytest_benchmark_schema(self, tmp_path):
        path = _write(tmp_path / "bench.json", {"x": 0.25, "y": 3.5})
        assert check.load_benchmark_means(path) == {"x": 0.25, "y": 3.5}
