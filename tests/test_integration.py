"""End-to-end integration tests spanning multiple subsystems.

Each test exercises a complete pipeline a user of the library would run:
capture -> codec -> daemon -> collector -> query, or trace -> summary ->
serialization -> accuracy analysis.  They are intentionally small enough to
run in a few seconds but cross every module boundary.
"""

import io

import pytest

from repro.analysis import AccuracyEvaluator, heavy_hitter_report, storage_report
from repro.baselines import ExactAggregator
from repro.core import FlowKey, Flowtree, FlowtreeConfig, from_bytes, to_bytes
from repro.distributed import Collector, Deployment, FlowtreeDaemon, SimulatedTransport
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F, SCHEMA_5F
from repro.flows import (
    IpfixDecoder,
    encode_datagrams,
    encode_messages,
    packets_to_flows,
    read_pcap,
    write_pcap,
)
from repro.traces import CaidaLikeTraceGenerator, EnterpriseTraceGenerator
from repro.traces.replay import split_by_site


class TestCaptureToSummaryPipelines:
    """Raw capture formats -> Flowtree, with consistent totals throughout."""

    @pytest.fixture(scope="class")
    def packets(self):
        return list(CaidaLikeTraceGenerator(seed=404, flow_population=3_000).packets(9_000))

    def test_pcap_pipeline(self, packets):
        buffer = io.BytesIO()
        write_pcap(buffer, packets)
        buffer.seek(0)
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=2_000))
        tree.add_records(read_pcap(buffer))
        assert tree.total_counters().packets == len(packets)
        tree.validate()

    def test_netflow_pipeline_preserves_packet_totals(self, packets):
        flows = list(packets_to_flows(iter(packets), exporter="edge-9"))
        datagrams = list(encode_datagrams(flows, base_time=packets[0].timestamp))
        transport = SimulatedTransport()
        collector = Collector(SCHEMA_5F, transport, bin_width=3_600.0)
        daemon = FlowtreeDaemon(
            "edge-9", SCHEMA_5F, transport, collector_name=collector.name,
            bin_width=3_600.0, config=FlowtreeConfig(max_nodes=2_000),
        )
        daemon.consume_netflow(datagrams)
        daemon.flush()
        collector.poll()
        merged = collector.merged()
        assert merged.total_counters().packets == len(packets)
        # Per-protocol split survives the whole pipeline (5-feature schema).
        tcp = FlowKey.from_wire(SCHEMA_5F, ("6", "*", "*", "*", "*"))
        udp = FlowKey.from_wire(SCHEMA_5F, ("17", "*", "*", "*", "*"))
        other = len(packets) - merged.estimate(tcp).value() - merged.estimate(udp).value()
        assert 0 <= other < len(packets) * 0.1

    def test_ipfix_pipeline(self, packets):
        flows = list(packets_to_flows(iter(packets)))
        messages = list(encode_messages(flows, records_per_message=64))
        decoder = IpfixDecoder(exporter="edge-ipfix")
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=2_000))
        tree.add_records(decoder.decode_stream(messages))
        assert tree.total_counters().packets == len(packets)

    def test_summary_file_round_trip_supports_further_merging(self, packets):
        half = len(packets) // 2
        first = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=1_500))
        second = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=1_500))
        first.add_records(packets[:half])
        second.add_records(packets[half:])
        # Simulate two sites writing summary files read back by an analyst.
        restored_first = from_bytes(to_bytes(first))
        restored_second = from_bytes(to_bytes(second))
        merged = restored_first.merged(restored_second)
        assert merged.total_counters().packets == len(packets)


class TestAccuracyAgainstGroundTruth:
    def test_flowtree_beats_noise_and_keeps_heavy_flows(self):
        packets = list(CaidaLikeTraceGenerator(seed=901, flow_population=5_000).packets(15_000))
        tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=1_200))
        truth = ExactAggregator(SCHEMA_2F_SRC_DST)
        for packet in packets:
            tree.add_record(packet)
            truth.add_record(packet)
        report = AccuracyEvaluator(truth).evaluate(tree, trace_name="integration")
        assert report.diagonal_fraction > 0.5
        assert report.heavy_flow_recall == 1.0
        hh = heavy_hitter_report(tree, truth, threshold_fraction=0.01)
        assert hh.all_heavy_present
        storage = storage_report(tree, list(packets_to_flows(iter(packets))),
                                 packet_count=len(packets))
        assert storage.reduction_vs_pcap > 0.9

    def test_node_budget_tradeoff_is_monotone(self):
        packets = list(CaidaLikeTraceGenerator(seed=902, flow_population=4_000).packets(10_000))
        truth = ExactAggregator(SCHEMA_2F_SRC_DST)
        for packet in packets:
            truth.add_record(packet)
        errors = []
        for budget in (200, 800, 3_200):
            tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=budget))
            tree.add_records(packets)
            report = AccuracyEvaluator(truth).evaluate(tree, population="all")
            errors.append(report.weighted_relative_error)
        assert errors[0] >= errors[1] >= errors[2]


class TestMultiSiteScenario:
    def test_five_site_deployment_answers_fig1_query(self):
        sites = [f"site-{i}" for i in range(5)]
        deployment = Deployment(
            SCHEMA_2F_SRC_DST, sites, bin_width=120.0,
            daemon_config=FlowtreeConfig(max_nodes=1_500),
        )
        for index, site in enumerate(sites):
            generator = EnterpriseTraceGenerator(
                site_prefix=f"100.{70 + index}.0.0", seed=300 + index,
                customer_count=500, flows_per_customer=10,
            )
            deployment.attach_records(site, list(generator.packets(6_000)))
        deployment.run()

        # Total volume of traffic sent by peer-alpha (11.0.0.0/8) to all sites.
        response = deployment.query_engine.volume(("11.0.0.0/8", "*"))
        assert set(response.per_site) == set(sites)
        assert response.total == sum(response.per_site.values())
        total_traffic = deployment.query_engine.volume(("*", "*")).total
        assert total_traffic == 5 * 6_000
        # peer-alpha carries the largest configured share (~38 %) of every site.
        assert 0.2 < response.total / total_traffic < 0.6

        # Drill-down works on the merged cross-site view.
        steps = deployment.query_engine.investigate(("11.0.0.0/8", "*"), feature_index=0)
        assert isinstance(steps, list)
        # Transfer accounting is wired through.
        assert deployment.transfer_bytes() > 0
