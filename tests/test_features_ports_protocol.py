"""Tests for port-range, protocol and categorical features."""

import pytest

from repro.features.base import FeatureError, ParseError
from repro.features.ports import MAX_PORT, PORT_BITS, PortRange, well_known_service
from repro.features.protocol import Protocol
from repro.features.wildcard import CategoricalValue


class TestPortRange:
    def test_single_port(self):
        port = PortRange.single(443)
        assert port.low == port.high == 443
        assert port.is_single
        assert port.cardinality == 1
        assert port.specificity == PORT_BITS

    def test_root_covers_everything(self):
        root = PortRange.root()
        assert root.low == 0
        assert root.high == MAX_PORT
        assert root.is_root
        assert root.cardinality == 65536

    def test_rejects_out_of_range_port(self):
        with pytest.raises(FeatureError):
            PortRange.single(70_000)

    def test_rejects_misaligned_base(self):
        with pytest.raises(FeatureError):
            PortRange(81, 15)

    def test_generalize_doubles_width(self):
        port = PortRange.single(80)
        wider = port.generalize()
        assert wider.cardinality == 2
        assert wider.contains(port)

    def test_generalize_to(self):
        port = PortRange.single(1500)
        wide = port.generalize_to(6)
        assert wide.cardinality == 1 << 10
        assert wide.contains(port)

    def test_generalize_to_rejects_specialization(self):
        with pytest.raises(FeatureError):
            PortRange.root().generalize_to(4)

    def test_covering_range(self):
        covering = PortRange.covering(1024, 1536)
        assert covering.low <= 1024
        assert covering.high >= 1536
        assert covering.low % covering.cardinality == 0

    def test_covering_single_value(self):
        assert PortRange.covering(80, 80) == PortRange.single(80)

    def test_contains_port(self):
        port_range = PortRange(1024, 6)
        assert port_range.contains_port(1500)
        assert not port_range.contains_port(80)

    def test_contains_rejects_other_feature_types(self):
        assert not PortRange.root().contains(Protocol.tcp())

    def test_wire_round_trip_single(self):
        assert PortRange.from_wire("8080") == PortRange.single(8080)

    def test_wire_round_trip_range(self):
        original = PortRange(1024, 6)
        assert PortRange.from_wire(original.to_wire()) == original

    def test_wire_wildcard(self):
        assert PortRange.from_wire("*").is_root

    def test_wire_rejects_unaligned_range(self):
        with pytest.raises(ParseError):
            PortRange.from_wire("100-200")

    def test_wire_rejects_garbage(self):
        with pytest.raises(ParseError):
            PortRange.from_wire("http")

    def test_equality_and_hash(self):
        assert PortRange.single(53) == PortRange.single(53)
        assert hash(PortRange.single(53)) == hash(PortRange.single(53))
        assert PortRange.single(53) != PortRange.single(54)

    def test_well_known_service_names(self):
        assert well_known_service(443) == "https"
        assert well_known_service(PortRange.single(22)) == "ssh"
        assert well_known_service(PortRange(1024, 6)) == "1024-2047"
        assert well_known_service(6100) == "6100"


class TestProtocol:
    def test_named_constructors(self):
        assert Protocol.tcp().number == 6
        assert Protocol.udp().number == 17
        assert Protocol.icmp().number == 1

    def test_root_is_wildcard(self):
        root = Protocol.root()
        assert root.is_root
        assert root.number is None
        assert root.cardinality == 256

    def test_parse_by_name_and_number(self):
        assert Protocol("tcp") == Protocol(6)
        assert Protocol("17") == Protocol.udp()

    def test_rejects_unknown_name(self):
        with pytest.raises(ParseError):
            Protocol("carrier-pigeon")

    def test_rejects_out_of_range(self):
        with pytest.raises(FeatureError):
            Protocol(300)

    def test_generalize_goes_to_root(self):
        assert Protocol.tcp().generalize().is_root

    def test_contains(self):
        assert Protocol.root().contains(Protocol.tcp())
        assert not Protocol.tcp().contains(Protocol.udp())
        assert Protocol.tcp().contains(Protocol.tcp())

    def test_wire_round_trip(self):
        assert Protocol.from_wire(Protocol.tcp().to_wire()) == Protocol.tcp()
        assert Protocol.from_wire("*").is_root

    def test_name_rendering(self):
        assert Protocol.tcp().name == "tcp"
        assert Protocol(123).name == "proto-123"
        assert Protocol.root().name == "*"


class TestCategoricalValue:
    def test_basic_hierarchy(self):
        value = CategoricalValue("site-A", domain="site")
        assert value.specificity == 1
        assert value.generalize().is_root
        assert CategoricalValue.root("site").contains(value)

    def test_domains_do_not_mix(self):
        site = CategoricalValue("x", domain="site")
        customer = CategoricalValue("x", domain="customer")
        assert site != customer
        assert not CategoricalValue.root("site").contains(customer)

    def test_wire_round_trip(self):
        value = CategoricalValue("edge-7", domain="router", domain_size=64)
        decoded = CategoricalValue.from_wire(value.to_wire())
        assert decoded == value
        assert decoded.cardinality == 1
        assert decoded.generalize().cardinality == 64

    def test_rejects_reserved_characters(self):
        with pytest.raises(FeatureError):
            CategoricalValue("a|b", domain="site")

    def test_rejects_bad_domain_size(self):
        with pytest.raises(FeatureError):
            CategoricalValue("a", domain="site", domain_size=0)

    def test_rejects_non_string_value(self):
        with pytest.raises(FeatureError):
            CategoricalValue(42, domain="site")
