"""Fixed-width FTAB sub-batch format (version 2) and its negotiation.

Covers the satellite contract of the fixed-width fast path:

* mixed payloads — fully specific runs encode as fixed-width sections,
  wildcarded runs as varint sections, inside ONE sub-batch, and decode in
  the original entry order;
* equivalence — decoding the fixed-width payload yields byte-identical
  trees to decoding the forced-varint payload of the same batch;
* old-reader rejection / new-reader acceptance — a strict version-1
  reader refuses version-2 payloads by the version byte alone, while this
  reader still accepts hand-built version-1 payloads;
* HELLO negotiation — a site advertising a newer sub-batch format than
  the collector decodes is rejected at HELLO time, before any summary
  bytes flow.
"""

from __future__ import annotations

import pytest

from helpers import key2, key4, make_record

from repro.core.config import FlowtreeConfig
from repro.core.errors import SerializationError
from repro.core.flowtree import Flowtree
from repro.core.serialization import (
    BATCH_FORMAT_VERSION,
    BATCH_MAGIC,
    SECTION_FIXED,
    SECTION_VARINT,
    decode_aggregated_batch,
    encode_aggregated_batch,
    encode_varint,
    fixed_codec_for,
    to_bytes,
)
from repro.features.schema import (
    SCHEMA_1F_SRC,
    SCHEMA_2F_SRC_DST,
    SCHEMA_4F,
    SCHEMA_5F,
)


def specific_items(n: int = 40):
    """Fully specific 4f entries (eligible for the fixed-width layout)."""
    return [
        (
            key4(f"10.0.{i // 256}.{i % 256}/32", "2.2.2.2/32", f"{1000 + i}", "80"),
            i + 1,
            (i + 1) * 100,
            1,
        )
        for i in range(n)
    ]


def wildcard_items(n: int = 10):
    """Wildcarded 4f entries (must ride the varint fallback)."""
    return [
        (key4(f"10.{i}.0.0/16", "*", "*", "80"), i + 1, (i + 1) * 10, 1)
        for i in range(n)
    ]


def section_modes(payload: bytes):
    """Parse just the section framing of a v2 payload: [(mode, count), ...]."""
    assert payload[: len(BATCH_MAGIC)] == BATCH_MAGIC
    assert payload[len(BATCH_MAGIC)] == BATCH_FORMAT_VERSION
    offset = len(BATCH_MAGIC) + 1
    from repro.core.serialization import decode_varint, fixed_codec_for as _codec

    _, offset = decode_varint(payload, offset)        # record_count
    total, offset = decode_varint(payload, offset)
    codec = _codec(SCHEMA_4F)
    modes = []
    seen = 0
    while seen < total:
        mode = payload[offset]
        offset += 1
        count, offset = decode_varint(payload, offset)
        modes.append((mode, count))
        seen += count
        if mode == SECTION_FIXED:
            offset += count * codec.size
        else:
            for _ in range(count):
                from repro.core.serialization import _decode_varint_entry

                _, offset = _decode_varint_entry(payload, offset, SCHEMA_4F)
    return modes


class TestMixedBatches:
    def test_mixed_payload_has_both_section_kinds(self):
        items = specific_items(8) + wildcard_items(3) + specific_items(5)
        payload = encode_aggregated_batch(items, record_count=16)
        modes = section_modes(payload)
        assert [mode for mode, _ in modes] == [
            SECTION_FIXED, SECTION_VARINT, SECTION_FIXED,
        ]
        assert [count for _, count in modes] == [8, 3, 5]

    def test_mixed_payload_decodes_in_original_order(self):
        items = wildcard_items(2) + specific_items(6) + wildcard_items(1)
        payload = encode_aggregated_batch(items, record_count=9)
        decoded, record_count = decode_aggregated_batch(payload, SCHEMA_4F)
        assert record_count == 9
        assert decoded == items

    @pytest.mark.parametrize("schema,key_builder", [
        (SCHEMA_4F, lambda i: key4(f"10.0.0.{i}/32", "2.2.2.2/32", str(i), "80")),
        (SCHEMA_2F_SRC_DST, lambda i: key2(f"10.0.0.{i}/32", "2.2.2.2/32")),
        (SCHEMA_1F_SRC, None),
        (SCHEMA_5F, None),
    ])
    def test_every_builtin_schema_round_trips(self, schema, key_builder):
        from repro.core.key import FlowKey

        if key_builder is None:
            records = [make_record(src=f"10.0.0.{i}", sport=i) for i in range(20)]
            items = [
                (FlowKey.from_record(schema, record), i + 1, 100, 1)
                for i, record in enumerate(records)
            ]
        else:
            items = [(key_builder(i), i + 1, 100, 1) for i in range(20)]
        payload = encode_aggregated_batch(items, record_count=20)
        decoded, _ = decode_aggregated_batch(payload, schema)
        assert decoded == items

    def test_big_counters_fall_back_to_varint(self):
        items = specific_items(3)
        items[1] = (items[1][0], 1 << 70, 5, 1)      # exceeds int64
        payload = encode_aggregated_batch(items, record_count=3)
        modes = [mode for mode, _ in section_modes(payload)]
        assert SECTION_VARINT in modes
        decoded, _ = decode_aggregated_batch(payload, SCHEMA_4F)
        assert decoded == items

    def test_fixed_payload_is_smaller(self):
        items = specific_items(200)
        fixed = encode_aggregated_batch(items, record_count=200)
        varint = encode_aggregated_batch(items, record_count=200, allow_fixed=False)
        assert len(fixed) < len(varint)


class TestEquivalence:
    def test_decoded_trees_byte_identical_to_varint_path(self):
        items = specific_items(60) + wildcard_items(8)
        fixed_payload = encode_aggregated_batch(items, record_count=68)
        varint_payload = encode_aggregated_batch(
            items, record_count=68, allow_fixed=False
        )
        assert fixed_payload != varint_payload    # genuinely different layouts

        config = FlowtreeConfig(max_nodes=10_000)
        via_fixed = Flowtree(SCHEMA_4F, config)
        decoded, record_count = decode_aggregated_batch(fixed_payload, SCHEMA_4F)
        via_fixed.add_aggregated(decoded, record_count=record_count)
        via_varint = Flowtree(SCHEMA_4F, config)
        decoded, record_count = decode_aggregated_batch(varint_payload, SCHEMA_4F)
        via_varint.add_aggregated(decoded, record_count=record_count)
        assert to_bytes(via_fixed) == to_bytes(via_varint)

    def test_forced_varint_payload_is_pure_varint(self):
        items = specific_items(10)
        payload = encode_aggregated_batch(items, record_count=10, allow_fixed=False)
        assert all(mode == SECTION_VARINT for mode, _ in section_modes(payload))


class TestVersioning:
    def test_new_payloads_carry_version_2(self):
        # A version-1-only reader checks this byte with strict equality, so
        # the bump alone guarantees old readers reject the new layout
        # instead of misparsing it.
        payload = encode_aggregated_batch(specific_items(4), record_count=4)
        assert payload[len(BATCH_MAGIC)] == 2

    def test_version_1_payload_still_accepted(self):
        # Hand-build a v1 payload: one implicit varint section, no section
        # framing — the layout PRs 1-7 shipped.
        from repro.core.serialization import _encode_varint_entry

        items = wildcard_items(5)
        body = bytearray()
        encode_varint(7, body)            # record_count
        encode_varint(len(items), body)
        for entry in items:
            _encode_varint_entry(entry, body)
        payload = BATCH_MAGIC + bytes([1]) + bytes(body)
        decoded, record_count = decode_aggregated_batch(payload, SCHEMA_4F)
        assert record_count == 7
        assert decoded == items

    def test_future_version_rejected(self):
        payload = bytearray(encode_aggregated_batch(specific_items(4), record_count=4))
        payload[len(BATCH_MAGIC)] = 3
        with pytest.raises(SerializationError, match="version 3"):
            decode_aggregated_batch(bytes(payload), SCHEMA_4F)

    def test_truncated_fixed_section_rejected(self):
        payload = encode_aggregated_batch(specific_items(4), record_count=4)
        with pytest.raises(SerializationError):
            decode_aggregated_batch(payload[:-3], SCHEMA_4F)

    def test_trailing_bytes_rejected(self):
        payload = encode_aggregated_batch(specific_items(4), record_count=4)
        with pytest.raises(SerializationError, match="trailing"):
            decode_aggregated_batch(payload + b"\x00", SCHEMA_4F)

    def test_codecs_exist_exactly_for_builtin_schemas(self):
        for schema in (SCHEMA_1F_SRC, SCHEMA_2F_SRC_DST, SCHEMA_4F, SCHEMA_5F):
            assert fixed_codec_for(schema) is not None
