"""Tests for the pluggable collector storage layer.

Covers the three backends (memory / segment-file / SQLite), their
byte-for-byte equivalence under ingest + eviction + reopen, segment-store
crash safety (a torn write must never become visible), collector restart
recovery (sites, bins, diff baselines, dedup guards), duplicate-delivery
idempotency, and the bin-geometry validation on ingest.
"""

import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import key2
from repro.core.config import FlowtreeConfig
from repro.core.errors import DaemonError, QueryError, SerializationError
from repro.core.flowtree import Flowtree
from repro.core.serialization import from_bytes, summary_header, to_bytes
from repro.distributed import (
    Collector,
    CollectorConfig,
    FlowtreeDaemon,
    FlowtreeTimeSeries,
    SimulatedTransport,
)
from repro.distributed.messages import SummaryMessage
from repro.distributed.stores import (
    MemoryStore,
    SegmentFileStore,
    SQLiteStore,
    open_store,
)
from repro.distributed.stores.base import (
    pack_float,
    pack_int_pairs,
    pack_ints,
    unpack_float,
    unpack_int_pairs,
    unpack_ints,
)
from repro.features.ipaddr import ipv4_to_int
from repro.features.schema import SCHEMA_2F_SRC_DST
from repro.flows.records import PacketRecord

BIN_WIDTH = 10.0
STORAGE = FlowtreeConfig(max_nodes=500)


def packet(timestamp, src, dst="192.0.2.1"):
    return PacketRecord(timestamp, ipv4_to_int(src), ipv4_to_int(dst), 1234, 80, 6, 100)


def small_tree(pairs):
    tree = Flowtree(SCHEMA_2F_SRC_DST, STORAGE)
    for (src, dst), count in pairs:
        tree.add(key2(src, dst), packets=count)
    return tree


def message_stream(bins=6, per_bin=40, site="edge-1", drift=0):
    """Replay a multi-bin record stream through a daemon; returns its messages.

    ``drift`` shifts every timestamp, so two streams with different drift
    disagree on bin origin (used by the geometry tests).
    """
    transport = SimulatedTransport()
    daemon = FlowtreeDaemon(
        site, SCHEMA_2F_SRC_DST, transport, collector_name="collector",
        bin_width=BIN_WIDTH, config=STORAGE, use_diffs=True,
    )
    for b in range(bins):
        for i in range(per_bin):
            daemon.consume_record(
                packet(drift + b * BIN_WIDTH + (i % 9), f"10.0.{i % 5}.{1 + i % per_bin}")
            )
    daemon.flush()
    return [message for _, message in transport.receive("collector")]


def make_collector(kind, tmp, bin_width=BIN_WIDTH, retain_bins=None):
    if kind == "memory":
        path = None
    elif kind == "file":
        path = str(Path(tmp) / "fstore")
    else:
        path = str(Path(tmp) / "store.db")
    config = CollectorConfig(
        bin_width=bin_width, storage=STORAGE, store=kind, store_path=path,
        retain_bins=retain_bins,
    )
    return Collector(SCHEMA_2F_SRC_DST, SimulatedTransport(), config=config)


def site_bin_bytes(collector):
    """``{(site, bin): serialized tree}`` snapshot of a collector's store."""
    snapshot = {}
    for site in collector.sites:
        for index in collector.bins_for(site):
            snapshot[(site, index)] = collector.store.get_bytes(site, index)
    return snapshot


class TestMetaCodecs:
    def test_float_roundtrip(self):
        for value in (0.0, 1.5, -273.15, 1e18, 0.1):
            assert unpack_float(pack_float(value)) == value

    def test_ints_and_pairs_roundtrip(self):
        values = [0, 1, -5, 2**40, -(2**40)]
        assert unpack_ints(pack_ints(values)) == values
        pairs = {(0, 0), (3, 7), (-2, 5)}
        assert unpack_int_pairs(pack_int_pairs(pairs)) == pairs

    def test_bad_float_length_rejected(self):
        with pytest.raises(SerializationError):
            unpack_float(b"abc")


@pytest.fixture()
def backends(tmp_path):
    stores = [
        MemoryStore(),
        SegmentFileStore(tmp_path / "fstore"),
        SQLiteStore(tmp_path / "store.db"),
    ]
    yield stores
    for store in stores:
        store.close()


class TestStoreBackends:
    def test_put_get_identical_across_backends(self, backends):
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5), (("10.0.0.2", "192.0.2.1"), 9)])
        reference = to_bytes(tree)
        for store in backends:
            store.put("site", 3, tree.copy())
            assert store.get_bytes("site", 3) == reference
            assert to_bytes(store.get("site", 3)) == reference
            assert store.bin_indices("site") == [3]
            assert store.sites() == ["site"]
            assert summary_header(store.get_bytes("site", 3))["body_bytes"] > 0

    def test_absent_bins(self, backends):
        for store in backends:
            assert store.get("ghost", 0) is None
            assert store.get_bytes("ghost", 0) is None
            assert store.bin_indices("ghost") == []

    def test_staged_bins_visible_and_flushed(self, backends):
        for store in backends:
            tree = small_tree([(("10.0.0.1", "192.0.2.1"), 1)])
            store.stage("site", 0, tree)
            assert store.bin_indices("site") == [0]
            tree.add(key2("10.0.0.2", "192.0.2.1"), packets=4)
            store.mark_dirty("site", 0)
            store.flush()
            assert store.get_bytes("site", 0) == to_bytes(tree)

    def test_delete_before(self, backends):
        for store in backends:
            for index in range(5):
                store.put("site", index, small_tree([(("10.0.0.1", "192.0.2.1"), index + 1)]))
            assert store.delete_before("site", 3) == 3
            assert store.bin_indices("site") == [3, 4]

    def test_meta_roundtrip_and_delete(self, backends):
        for store in backends:
            assert store.get_meta("k") is None
            store.set_meta("k", b"value")
            assert store.get_meta("k") == b"value"
            store.set_meta("k", None)
            assert store.get_meta("k") is None

    def test_durable_backends_survive_reopen(self, tmp_path):
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 7)])
        reference = to_bytes(tree)
        for first in (SegmentFileStore(tmp_path / "f2"), SQLiteStore(tmp_path / "s2.db")):
            first.put("site", 1, tree.copy(), meta={"origin/site": pack_float(42.0)})
            first.close()
            reopened = type(first)(
                tmp_path / "f2" if isinstance(first, SegmentFileStore) else tmp_path / "s2.db"
            )
            assert reopened.get_bytes("site", 1) == reference
            assert reopened.get_meta("origin/site") == pack_float(42.0)
            reopened.close()

    def test_lru_cache_evicts_and_lazily_loads(self, tmp_path):
        store = SegmentFileStore(tmp_path / "lru", cache_bins=2)
        payloads = {}
        for index in range(6):
            tree = small_tree([((f"10.0.0.{index + 1}", "192.0.2.1"), index + 1)])
            store.put("site", index, tree)
            payloads[index] = to_bytes(tree)
        assert len(store._cache) <= 2
        assert store.stats.evictions >= 4
        store.close()

        reopened = SegmentFileStore(tmp_path / "lru", cache_bins=2)
        assert to_bytes(reopened.get("site", 4)) == payloads[4]
        assert to_bytes(reopened.get("site", 5)) == payloads[5]
        # Only the touched bins were deserialized.
        assert reopened.stats.loads == 2
        # Repeat reads are cache hits, not reloads.
        reopened.get("site", 5)
        assert reopened.stats.loads == 2
        assert reopened.stats.cache_hits == 1
        reopened.close()

    def test_dirty_bin_eviction_persists(self, tmp_path):
        store = SegmentFileStore(tmp_path / "dirty", cache_bins=2)
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 1)])
        store.stage("site", 0, tree)
        tree.add(key2("10.0.0.9", "192.0.2.1"), packets=3)
        store.mark_dirty("site", 0)
        # Push the dirty bin out of the cache.
        for index in range(1, 4):
            store.put("site", index, small_tree([(("10.0.1.1", "192.0.2.1"), index)]))
        assert store.get_bytes("site", 0) == to_bytes(tree)
        store.close()

    def test_segment_rolls_over(self, tmp_path):
        store = SegmentFileStore(tmp_path / "roll", segment_max_bytes=256)
        for index in range(5):
            store.put("site", index, small_tree([((f"10.0.0.{index + 1}", "192.0.2.1"), 1)]))
        segments = list((tmp_path / "roll" / "segments").glob("seg-*.dat"))
        assert len(segments) > 1
        for index in range(5):
            assert store.get_bytes("site", index) is not None
        store.close()

    def test_open_store_factory_validation(self, tmp_path):
        from repro.core.errors import ConfigurationError

        assert open_store("memory").backend == "memory"
        with pytest.raises(ConfigurationError):
            open_store("memory", tmp_path / "x")
        with pytest.raises(ConfigurationError):
            open_store("file")
        with pytest.raises(ConfigurationError):
            open_store("tape")
        store = open_store("sqlite", tmp_path / "f.db")
        assert store.backend == "sqlite"
        store.close()


class TestSegmentCrashSafety:
    def test_crash_before_index_commit_is_invisible(self, tmp_path):
        path = tmp_path / "crash"
        store = SegmentFileStore(path)
        tree0 = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
        store.put("site", 0, tree0)

        # Simulate a crash after the segment append but before the index
        # rename: the record's bytes land in the file, the commit does not.
        def crash():
            raise OSError("simulated crash before index commit")

        store._commit_index = crash
        with pytest.raises(OSError):
            store.put("site", 1, small_tree([(("10.0.0.2", "192.0.2.1"), 9)]))
        # "Kill" the process: no close, no flush.

        reopened = SegmentFileStore(path)
        assert reopened.bin_indices("site") == [0]
        assert reopened.get("site", 1) is None
        assert reopened.get_bytes("site", 0) == to_bytes(tree0)
        # The store keeps working after recovery, torn tail and all.
        tree1 = small_tree([(("10.0.0.3", "192.0.2.1"), 2)])
        reopened.put("site", 1, tree1)
        assert reopened.get_bytes("site", 1) == to_bytes(tree1)
        reopened.close()

        final = SegmentFileStore(path)
        assert final.bin_indices("site") == [0, 1]
        assert final.get_bytes("site", 1) == to_bytes(tree1)
        final.close()

    def test_garbage_segment_tail_is_ignored(self, tmp_path):
        path = tmp_path / "tail"
        store = SegmentFileStore(path)
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
        store.put("site", 0, tree)
        store.close()
        segment = next((path / "segments").glob("seg-*.dat"))
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn half-record")

        reopened = SegmentFileStore(path)
        assert reopened.bin_indices("site") == [0]
        assert reopened.get_bytes("site", 0) == to_bytes(tree)
        tree2 = small_tree([(("10.0.0.2", "192.0.2.1"), 1)])
        reopened.put("site", 1, tree2)
        assert reopened.get_bytes("site", 1) == to_bytes(tree2)
        reopened.close()

    def test_corrupted_payload_detected(self, tmp_path):
        path = tmp_path / "corrupt"
        store = SegmentFileStore(path)
        store.put("site", 0, small_tree([(("10.0.0.1", "192.0.2.1"), 5)]))
        entry = store._bins["site"][0]
        store.close()
        segment_path = path / "segments" / f"seg-{entry[0]:08d}.dat"
        data = bytearray(segment_path.read_bytes())
        data[entry[1] + entry[2] // 2] ^= 0xFF
        segment_path.write_bytes(bytes(data))

        reopened = SegmentFileStore(path)
        with pytest.raises(SerializationError):
            reopened.get("site", 0)
        reopened.close()


class TestTimeSeriesStoreWiring:
    def test_bin_index_of_is_read_only(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=BIN_WIDTH)
        with pytest.raises(QueryError):
            series.bin_index_of(123.0)
        assert series.origin is None  # the failed lookup must not fix the origin
        series.add_record(packet(100.0, "10.0.0.1"))
        assert series.origin == 100.0
        assert series.bin_index_of(123.0) == 2
        assert series.bin_index_of(100.0) == 0

    def test_series_on_durable_store_persists_and_reopens(self, tmp_path):
        store = SegmentFileStore(tmp_path / "ts")
        series = FlowtreeTimeSeries(
            SCHEMA_2F_SRC_DST, bin_width=BIN_WIDTH, config=STORAGE,
            store=store, site="edge",
        )
        for t in range(35):
            series.add_record(packet(100.0 + t, "10.0.0.1"))
        series.flush()
        store.close()

        series2 = FlowtreeTimeSeries(
            SCHEMA_2F_SRC_DST, bin_width=BIN_WIDTH, config=STORAGE,
            store=SegmentFileStore(tmp_path / "ts"), site="edge",
        )
        assert series2.origin == 100.0  # restored from store metadata
        assert series2.bin_indices() == [0, 1, 2, 3]
        assert series2.query_range(key2("10.0.0.1", "192.0.2.1")) == 35
        assert series2.total_by_bin() == {0: 10, 1: 10, 2: 10, 3: 5}
        series2.store.close()

    def test_query_range_many_matches_per_key_estimates(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=BIN_WIDTH, config=STORAGE)
        for t in range(30):
            series.add_record(packet(float(t), f"10.0.{t % 3}.1"))
        keys = [key2(f"10.0.{i}.1", "192.0.2.1") for i in range(3)]
        batched = series.query_range_many(keys, start_bin=1)
        for key in keys:
            expected = sum(
                tree.estimate(key).value("packets")
                for index, tree in series.bins() if index >= 1
            )
            assert batched[key] == expected
            assert series.query_range(key, start_bin=1) == expected

    def test_series_many_matches_series(self):
        series = FlowtreeTimeSeries(SCHEMA_2F_SRC_DST, bin_width=5.0)
        for t in range(20):
            series.add_record(packet(float(t), "10.0.0.1"))
        key = key2("10.0.0.1", "192.0.2.1")
        assert series.series(key) == {0: 5, 1: 5, 2: 5, 3: 5}
        assert series.series_many([key]) == {i: {key: 5} for i in range(4)}


class TestCollectorDurability:
    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_kill_and_reopen_matches_uninterrupted_memory_collector(self, tmp_path, kind):
        messages = message_stream(bins=6)
        assert any(m.kind == "diff" for m in messages[3:]), "need diffs after the cut"

        reference = make_collector("memory", tmp_path)
        for message in messages:
            reference.ingest(message)

        first = make_collector(kind, tmp_path)
        for message in messages[:3]:
            first.ingest(message)
        first.flush()
        del first  # killed: no close

        recovered = make_collector(kind, tmp_path)
        assert recovered.sites == []
        assert recovered.reopen() == ["edge-1"]
        # The remaining messages include diffs, so this only works if the
        # decoder baseline was restored from the backend.
        for message in messages[3:]:
            recovered.ingest(message)

        assert recovered.sites == reference.sites
        assert recovered.bins_for("edge-1") == reference.bins_for("edge-1")
        assert site_bin_bytes(recovered) == site_bin_bytes(reference)
        assert to_bytes(recovered.merged()) == to_bytes(reference.merged())
        assert recovered.messages_processed == reference.messages_processed
        assert recovered.bytes_received == reference.bytes_received
        for key in (key2("10.0.1.2", "192.0.2.1"), key2("10.0.0.0/16", "*")):
            assert recovered.estimate(key) == reference.estimate(key)
            assert (
                recovered.site_series("edge-1").query_range(key, start_bin=2, end_bin=4)
                == reference.site_series("edge-1").query_range(key, start_bin=2, end_bin=4)
            )
        recovered.close()

    def test_duplicate_delivery_is_idempotent(self, tmp_path):
        messages = message_stream(bins=5)
        collector = make_collector("memory", tmp_path)
        for message in messages:
            assert collector.ingest(message) is True
        snapshot = site_bin_bytes(collector)
        processed = collector.messages_processed
        received = collector.bytes_received

        # A retrying daemon / replayed journal delivers everything again.
        for message in messages:
            assert collector.ingest(message) is False
        assert collector.duplicates_dropped == len(messages)
        assert collector.messages_processed == processed
        assert collector.bytes_received == received
        assert site_bin_bytes(collector) == snapshot

    def test_duplicate_guard_survives_reopen(self, tmp_path):
        messages = message_stream(bins=4)
        collector = make_collector("sqlite", tmp_path)
        for message in messages:
            collector.ingest(message)
        snapshot = site_bin_bytes(collector)
        collector.close()

        recovered = make_collector("sqlite", tmp_path)
        recovered.reopen()
        for message in messages:
            assert recovered.ingest(message) is False
        assert recovered.duplicates_dropped >= len(messages)
        assert site_bin_bytes(recovered) == snapshot
        recovered.close()

    def test_unsequenced_messages_bypass_the_guard(self, tmp_path):
        collector = make_collector("memory", tmp_path)
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
        message = SummaryMessage("m", 0, 0.0, BIN_WIDTH, "full", to_bytes(tree))
        assert message.sequence == -1
        assert collector.ingest(message) is True
        assert collector.ingest(message) is True  # legacy path: merge again
        assert collector.site_series("m").tree(0).total_counters().packets == 10

    def test_mismatched_bin_width_rejected(self, tmp_path):
        collector = make_collector("memory", tmp_path)  # bin_width = 10
        tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
        bad = SummaryMessage("edge-1", 0, 0.0, 5.0, "full", to_bytes(tree))
        with pytest.raises(DaemonError):
            collector.ingest(bad)
        assert collector.sites == []

    def test_misaligned_bin_origin_rejected(self, tmp_path):
        collector = make_collector("memory", tmp_path)
        for message in message_stream(bins=2):
            collector.ingest(message)
        # Same width, but a bin grid shifted by half a bin.
        drifted = message_stream(bins=1, drift=BIN_WIDTH / 2)[0]
        with pytest.raises(DaemonError):
            collector.ingest(drifted)

    def test_store_identity_pinned(self, tmp_path):
        collector = make_collector("sqlite", tmp_path)
        for message in message_stream(bins=2):
            collector.ingest(message)
        collector.close()
        config = CollectorConfig(
            bin_width=7.0, storage=STORAGE, store="sqlite",
            store_path=str(Path(tmp_path) / "store.db"),
        )
        with pytest.raises(DaemonError):
            Collector(SCHEMA_2F_SRC_DST, SimulatedTransport(), config=config)

    @pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
    def test_retention_flows_to_backend(self, tmp_path, kind):
        collector = make_collector(kind, tmp_path, retain_bins=2)
        for message in message_stream(bins=5):
            collector.ingest(message)
        assert collector.bins_for("edge-1") == [3, 4]
        assert collector.store.bin_indices("edge-1") == [3, 4]
        collector.close()
        if kind != "memory":
            recovered = make_collector(kind, tmp_path, retain_bins=2)
            assert recovered.reopen() == ["edge-1"]
            assert recovered.bins_for("edge-1") == [3, 4]
            recovered.close()

    def test_failed_commit_leaves_message_retryable(self, tmp_path):
        """A backend write failure must not poison the message's retry.

        The dedup guard, counters and decoder baseline only advance after
        the durable commit; a retry of the failed message goes through and
        the collector ends byte-identical to one that never failed.
        """
        messages = message_stream(bins=5)
        reference = make_collector("memory", tmp_path / "ref")
        for message in messages:
            reference.ingest(message)

        collector = make_collector("sqlite", tmp_path)
        for message in messages[:2]:
            collector.ingest(message)

        real_put = collector.store.put

        def failing_put(*args, **kwargs):
            raise OSError("simulated backend write failure")

        collector.store.put = failing_put
        with pytest.raises(OSError):
            collector.ingest(messages[2])
        collector.store.put = real_put

        assert collector.messages_processed == 2  # nothing advanced
        assert collector.ingest(messages[2]) is True, "retry was dropped"
        for message in messages[3:]:
            assert collector.ingest(message) is True
        assert collector.duplicates_dropped == 0
        assert site_bin_bytes(collector) == site_bin_bytes(reference)
        assert to_bytes(collector.merged()) == to_bytes(reference.merged())
        collector.close()

    def test_restarted_daemon_not_mistaken_for_replay(self, tmp_path):
        """A fresh daemon run re-exports the same bins with new sequences.

        Its messages must be ingested (merged), not dropped by guards left
        over from the previous run — only true replays carry the same
        per-run sequence nonce.
        """
        first_run = message_stream(bins=3)
        second_run = message_stream(bins=3)  # same site, same bin grid
        collector = make_collector("memory", tmp_path)
        for message in first_run:
            assert collector.ingest(message) is True
        for message in second_run:
            assert collector.ingest(message) is True, "fresh export dropped as replay"
        assert collector.duplicates_dropped == 0
        assert collector.messages_processed == len(first_run) + len(second_run)
        # Both runs' traffic landed in the bins.
        key = key2("10.0.1.2", "192.0.2.1")
        single = make_collector("memory", tmp_path / "single")
        for message in first_run:
            single.ingest(message)
        assert collector.estimate(key)[0] == 2 * single.estimate(key)[0]

    def test_retention_prunes_guards_and_rejects_expired(self, tmp_path):
        """Retention bounds the dedup guard set and holds the horizon.

        Guards for evicted bins are pruned; replaying an evicted bin's
        message must not resurrect it (horizon rejection), in the live
        collector and across a reopen.
        """
        messages = message_stream(bins=6)
        collector = make_collector("sqlite", tmp_path, retain_bins=2)
        for message in messages:
            collector.ingest(message)
        assert collector.bins_for("edge-1") == [4, 5]
        horizon = 4
        assert all(bin_index >= horizon for bin_index, _ in collector._seen["edge-1"])
        old = [m for m in messages if m.bin_index < horizon]
        assert old
        for message in old:
            assert collector.ingest(message) is False
        assert collector.expired_dropped == len(old)
        assert collector.bins_for("edge-1") == [4, 5], "evicted bin resurrected"
        collector.close()

        recovered = make_collector("sqlite", tmp_path, retain_bins=2)
        recovered.reopen()
        assert all(bin_index >= horizon for bin_index, _ in recovered._seen["edge-1"])
        for message in old:
            assert recovered.ingest(message) is False
        assert recovered.bins_for("edge-1") == [4, 5]
        recovered.close()

    def test_estimate_many_matches_per_key_estimates(self, tmp_path):
        collector = make_collector("memory", tmp_path)
        for message in message_stream(bins=4):
            collector.ingest(message)
        keys = [key2(f"10.0.{i}.1", "192.0.2.1") for i in range(3)] + [key2("10.0.0.0/16", "*")]
        totals, per_site = collector.estimate_many(keys, start_bin=1, end_bin=3)
        for key in keys:
            total, by_site = collector.estimate(key, start_bin=1, end_bin=3)
            assert totals[key] == total
            assert {site: values[key] for site, values in per_site.items()} == by_site


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    bins=st.integers(min_value=1, max_value=4),
    per_bin=st.integers(min_value=1, max_value=12),
    evict_cut=st.integers(min_value=0, max_value=3),
)
def test_property_backends_byte_identical(bins, per_bin, evict_cut):
    """MemoryStore == SegmentFileStore == SQLiteStore, byte for byte.

    After the same message stream, after eviction, and (for the durable
    backends) after a reopen, every (site, bin) must serialize to the
    exact same payload on every backend.
    """
    messages = message_stream(bins=bins, per_bin=per_bin)
    with tempfile.TemporaryDirectory() as tmp:
        collectors = {
            kind: make_collector(kind, os.path.join(tmp, kind))
            for kind in ("memory", "file", "sqlite")
        }
        for collector in collectors.values():
            for message in messages:
                collector.ingest(message)
        reference = site_bin_bytes(collectors["memory"])
        assert reference
        for kind in ("file", "sqlite"):
            assert site_bin_bytes(collectors[kind]) == reference

        for collector in collectors.values():
            collector.evict_before(evict_cut)
        reference = site_bin_bytes(collectors["memory"])
        for kind in ("file", "sqlite"):
            assert site_bin_bytes(collectors[kind]) == reference
            collectors[kind].close()

        for kind in ("file", "sqlite"):
            recovered = make_collector(kind, os.path.join(tmp, kind))
            recovered.reopen()
            assert site_bin_bytes(recovered) == reference
            if reference:
                assert to_bytes(recovered.merged()) == to_bytes(
                    collectors["memory"].merged()
                )
            recovered.close()


def test_decoder_full_path_baseline_not_copied():
    """The full-summary path reuses the freshly deserialized tree as baseline."""
    from repro.distributed.diffsync import DiffSyncDecoder

    decoder = DiffSyncDecoder()
    tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
    message = SummaryMessage("s", 0, 0.0, BIN_WIDTH, "full", to_bytes(tree))
    reconstructed = decoder.decode(message)
    assert decoder.baseline("s") is reconstructed  # no defensive copy
    assert to_bytes(reconstructed) == to_bytes(tree)


def test_reopen_restores_baseline_identical_to_decoder_state(tmp_path):
    """The persisted baseline equals what the live decoder held."""
    messages = message_stream(bins=4)
    collector = make_collector("file", tmp_path)
    for message in messages:
        collector.ingest(message)
    live_baseline = to_bytes(collector._decoder.baseline("edge-1"))
    collector.close()

    recovered = make_collector("file", tmp_path)
    recovered.reopen()
    assert to_bytes(recovered._decoder.baseline("edge-1")) == live_baseline
    recovered.close()


def test_summary_header_rejects_garbage():
    tree = small_tree([(("10.0.0.1", "192.0.2.1"), 5)])
    payload = to_bytes(tree)
    header = summary_header(payload)
    assert header["compressed"] == 1
    assert header["body_bytes"] == len(payload) - 10
    with pytest.raises(SerializationError):
        summary_header(b"not a summary")
    with pytest.raises(SerializationError):
        summary_header(payload[:-1])
    assert to_bytes(from_bytes(payload)) == payload
