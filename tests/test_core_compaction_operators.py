"""Tests for compaction behaviour and the merge/diff operators."""

import pytest

from helpers import key2, key4, make_record
from repro.core.config import FlowtreeConfig
from repro.core.errors import SchemaMismatchError
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.core.node import Counters
from repro.core.operators import (
    apply_diff,
    conservation_error,
    counter_table,
    diff_chain,
    find_heavy_hitters,
    key_union,
    merge_all,
    reconstruct_from_diffs,
    relative_change,
    summary_distance,
    total_traffic,
)
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F
from repro.traces import CaidaLikeTraceGenerator


def build_tree(packets, max_nodes=200, schema=SCHEMA_4F):
    tree = Flowtree(schema, FlowtreeConfig(max_nodes=max_nodes))
    tree.add_records(packets)
    return tree


class TestCompaction:
    def test_compaction_preserves_totals(self, packet_stream_small):
        tree = build_tree(packet_stream_small, max_nodes=64)
        assert tree.total_counters().packets == len(packet_stream_small)

    def test_compaction_creates_intermediate_aggregates(self, packet_stream_small):
        tree = build_tree(packet_stream_small, max_nodes=128)
        specificities = {key.specificity for key in tree.keys()}
        full = max(specificities)
        # There must be aggregation levels strictly between root and fully specific.
        assert any(0 < spec < full for spec in specificities)

    def test_compaction_does_not_dump_everything_into_root(self, packet_stream_small):
        tree = build_tree(packet_stream_small, max_nodes=128)
        root_share = tree.root.counters.packets / max(1, tree.total_counters().packets)
        assert root_share < 0.2

    def test_explicit_compact_to_target(self, packet_stream_small):
        tree = build_tree(packet_stream_small, max_nodes=1_000)
        before = len(tree)
        removed = tree.compact(target_nodes=100)
        assert len(tree) <= 100
        assert removed >= before - 100
        tree.validate()

    def test_compact_noop_when_under_target(self, empty_tree_4f):
        empty_tree_4f.add_record(make_record())
        assert empty_tree_4f.compact(target_nodes=100) == 0

    def test_compact_unbounded_tree_is_noop(self, packet_stream_small, unbounded_config):
        tree = Flowtree(SCHEMA_4F, unbounded_config)
        tree.add_records(packet_stream_small[:500])
        assert tree.compact() == 0

    def test_heavy_flows_survive_compaction(self, packet_stream_small):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=256))
        heavy = make_record(src="9.9.9.9", dport=443)
        for packet in packet_stream_small:
            tree.add_record(packet)
            tree.add_record(heavy)
        heavy_key = FlowKey.from_record(SCHEMA_4F, heavy)
        assert heavy_key in tree
        estimate = tree.estimate(heavy_key).value()
        assert estimate >= len(packet_stream_small) * 0.9

    def test_protected_min_count_keeps_popular_leaves(self):
        config = FlowtreeConfig(max_nodes=32, protected_min_count=50, victim_batch=4)
        tree = Flowtree(SCHEMA_2F_SRC_DST, config)
        protected = make_record(src="10.0.0.1", dst="192.0.2.1", packets=100)
        tree.add_record(protected)
        for i in range(400):
            tree.add_record(make_record(src=f"172.16.{i % 250}.{i // 250 + 1}", dst="198.51.100.9"))
        protected_key = FlowKey.from_record(SCHEMA_2F_SRC_DST, protected)
        assert protected_key in tree
        assert len(tree) <= 32


class TestMergeAndDiff:
    def test_merge_adds_complementary_counters(self):
        a = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=100))
        b = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=100))
        a.add(key2("10.0.0.1", "192.0.2.1"), packets=5)
        b.add(key2("10.0.0.1", "192.0.2.1"), packets=7)
        b.add(key2("10.0.0.0/8", "*"), packets=3)
        a.merge(b)
        assert a.complementary_counters(key2("10.0.0.1", "192.0.2.1")).packets == 12
        assert a.complementary_counters(key2("10.0.0.0/8", "*")).packets == 3
        a.validate()

    def test_merge_conserves_totals(self, packet_stream_small):
        half = len(packet_stream_small) // 2
        a = build_tree(packet_stream_small[:half], max_nodes=150)
        b = build_tree(packet_stream_small[half:], max_nodes=150)
        merged = a.merged(b)
        assert merged.total_counters().packets == len(packet_stream_small)
        # Originals untouched by the pure form.
        assert a.total_counters().packets == half

    def test_merge_respects_budget(self, packet_stream_small):
        half = len(packet_stream_small) // 2
        a = build_tree(packet_stream_small[:half], max_nodes=100)
        b = build_tree(packet_stream_small[half:], max_nodes=100)
        a.merge(b)
        assert len(a) <= 100

    def test_merge_is_commutative_in_totals(self, packet_stream_small):
        half = len(packet_stream_small) // 2
        a = build_tree(packet_stream_small[:half], max_nodes=500)
        b = build_tree(packet_stream_small[half:], max_nodes=500)
        ab = a.merged(b)
        ba = b.merged(a)
        assert ab.total_counters() == ba.total_counters()

    def test_diff_then_apply_recovers_counts(self):
        before = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=100))
        after = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=100))
        before.add(key2("10.0.0.1", "192.0.2.1"), packets=10)
        after.add(key2("10.0.0.1", "192.0.2.1"), packets=25)
        after.add(key2("172.16.0.1", "192.0.2.1"), packets=4)
        delta = after.diff(before)
        assert delta.complementary_counters(key2("10.0.0.1", "192.0.2.1")).packets == 15
        recovered = apply_diff(before, delta)
        assert recovered.total_counters() == after.total_counters()

    def test_diff_can_go_negative(self):
        before = Flowtree(SCHEMA_2F_SRC_DST)
        after = Flowtree(SCHEMA_2F_SRC_DST)
        before.add(key2("10.0.0.1", "192.0.2.1"), packets=10)
        delta = after.diff(before)
        assert delta.complementary_counters(key2("10.0.0.1", "192.0.2.1")).packets == -10

    def test_prune_zero_nodes_after_diff(self):
        a = Flowtree(SCHEMA_2F_SRC_DST)
        a.add(key2("10.0.0.1", "192.0.2.1"), packets=10)
        delta = a.diff(a)
        removed = delta.prune_zero_nodes()
        assert removed >= 1
        assert delta.total_counters().is_zero

    def test_merge_all_and_diff_chain(self, packet_stream_small):
        thirds = len(packet_stream_small) // 3
        trees = [
            build_tree(packet_stream_small[i * thirds:(i + 1) * thirds], max_nodes=200)
            for i in range(3)
        ]
        merged = merge_all(trees)
        assert merged.total_counters().packets == thirds * 3
        deltas = diff_chain(trees)
        assert len(deltas) == 2
        rebuilt = reconstruct_from_diffs(trees[0], deltas)
        assert rebuilt.total_counters() == trees[2].total_counters()

    def test_merge_all_rejects_empty(self):
        with pytest.raises(SchemaMismatchError):
            merge_all([])


class TestOperatorHelpers:
    def test_key_union_and_counter_table(self):
        a = Flowtree(SCHEMA_2F_SRC_DST)
        b = Flowtree(SCHEMA_2F_SRC_DST)
        a.add(key2("10.0.0.1", "192.0.2.1"), packets=5)
        b.add(key2("172.16.0.1", "192.0.2.1"), packets=9)
        union = key_union([a, b])
        assert key2("10.0.0.1", "192.0.2.1") in union
        assert key2("172.16.0.1", "192.0.2.1") in union
        table = counter_table([a, b])
        assert table[key2("10.0.0.1", "192.0.2.1")] == [5, 0]
        assert table[key2("172.16.0.1", "192.0.2.1")] == [0, 9]

    def test_relative_change_orders_by_magnitude(self):
        before = Flowtree(SCHEMA_2F_SRC_DST)
        after = Flowtree(SCHEMA_2F_SRC_DST)
        before.add(key2("10.0.0.1", "192.0.2.1"), packets=100)
        after.add(key2("10.0.0.1", "192.0.2.1"), packets=100)
        after.add(key2("172.16.0.1", "192.0.2.1"), packets=500)
        changes = relative_change(before, after, min_popularity=10)
        assert changes[0][0] == key2("172.16.0.1", "192.0.2.1")
        assert changes[0][3] == pytest.approx(500.0)

    def test_summary_distance_bounds(self, packet_stream_small):
        a = build_tree(packet_stream_small[:1_000], max_nodes=300)
        b = build_tree(packet_stream_small[:1_000], max_nodes=300)
        c = build_tree(packet_stream_small[1_000:2_000], max_nodes=300)
        assert summary_distance(a, b) == pytest.approx(0.0)
        assert 0.0 < summary_distance(a, c) <= 1.0
        assert summary_distance(Flowtree(SCHEMA_4F), Flowtree(SCHEMA_4F)) == 0.0

    def test_total_traffic_and_conservation(self, packet_stream_small):
        tree = build_tree(packet_stream_small, max_nodes=200)
        expected = Counters(
            packets=len(packet_stream_small),
            bytes=sum(p.bytes for p in packet_stream_small),
            flows=len(packet_stream_small),
        )
        assert total_traffic([tree]) == expected.packets
        assert conservation_error(tree, expected) == {"packets": 0, "bytes": 0, "flows": 0}

    def test_cumulative_counters_match_subtree_sums(self, packet_stream_small):
        tree = build_tree(packet_stream_small[:2_000], max_nodes=200)
        cumulative = tree.cumulative_counters()
        assert set(cumulative) == set(tree.keys())
        # Spot-check against the per-node subtree computation, including the root.
        for key in list(tree.keys())[:25]:
            assert cumulative[key] == tree.subtree_counters(key)
        root_key = next(key for key in tree.keys() if key.is_root)
        assert cumulative[root_key] == tree.total_counters()

    def test_find_heavy_hitters(self):
        tree = Flowtree(SCHEMA_2F_SRC_DST)
        tree.add(key2("10.0.0.1", "192.0.2.1"), packets=900)
        tree.add(key2("172.16.0.1", "192.0.2.1"), packets=100)
        hitters = find_heavy_hitters(tree, threshold_fraction=0.5)
        keys = [key for key, _ in hitters]
        assert key2("10.0.0.1", "192.0.2.1") in keys
        assert key2("172.16.0.1", "192.0.2.1") not in keys
        limited = find_heavy_hitters(tree, 0.01, max_results=1)
        assert len(limited) == 1
