"""Tests for flowlint, the AST-based invariant linter (``repro.devtools.lint``).

Each rule gets fixture-driven coverage: a positive snippet the rule must
flag, a negative snippet it must pass, and a suppressed variant.  On top of
that the engine-level contracts are asserted — JSON report schema, exit
codes, rule selection — and a self-check pins the shipped tree to zero
findings, which is what makes reintroducing a contract violation a CI
failure rather than a code-review hope.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint.engine import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    REGISTRY,
    REPORT_VERSION,
    all_rules,
    check_project_sources,
    check_source,
    main,
    run,
)
from repro.devtools.lint.rules.atomic_commit import AtomicCommitRule
from repro.devtools.lint.rules.blocking_async import BlockingInAsyncRule
from repro.devtools.lint.rules.cache_coherence import CacheCoherenceRule
from repro.devtools.lint.rules.exception_hygiene import ExceptionHygieneRule
from repro.devtools.lint.rules.fault_reporting import FaultReportingRule
from repro.devtools.lint.rules.fold_determinism import FoldDeterminismRule
from repro.devtools.lint.rules.lock_discipline import LockDisciplineRule
from repro.devtools.lint.rules.picklability import PicklabilityRule
from repro.devtools.lint.rules.thread_confinement import ThreadConfinementRule
from repro.devtools.lint.rules.wire_format import (
    WireFormatRule,
    build_manifest,
    fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Paths inside each rule's scope, for fixture linting.
CORE_PATH = "src/repro/core/sample.py"
STORE_PATH = "src/repro/distributed/stores/sample.py"
SERIALIZATION_PATH = "src/repro/core/serialization.py"


def lint(source, path=CORE_PATH, rules=None):
    """check_source over a dedented snippet."""
    return check_source(textwrap.dedent(source), path, rules=rules)


def rule_names(findings):
    return [finding.rule for finding in findings]


# -- registry / engine basics --------------------------------------------------------


class TestEngine:
    def test_all_ten_rules_registered(self):
        names = {rule.name for rule in all_rules()}
        assert names == {
            "atomic-commit",
            "blocking-in-async",
            "cache-coherence",
            "exception-hygiene",
            "fault-reporting",
            "fold-determinism",
            "lock-discipline",
            "thread-confinement",
            "wire-format",
            "worker-picklability",
        }

    def test_rules_have_descriptions(self):
        for rule in all_rules():
            assert rule.description, rule.name

    def test_syntax_error_becomes_parse_error_finding(self):
        findings = lint("def broken(:\n    pass\n")
        assert rule_names(findings) == ["parse-error"]
        assert findings[0].line == 1

    def test_findings_are_sorted_and_positioned(self):
        findings = lint(
            """
            def late():
                try:
                    pass
                except:
                    pass

            def early():
                try:
                    pass
                except:
                    pass
            """
        )
        lines = [finding.line for finding in findings]
        assert lines == sorted(lines)
        assert all(finding.col >= 1 for finding in findings)

    def test_scope_respected_unless_disabled(self):
        source = """
        def f(store_path):
            store_path.write_text("x")
        """
        # Outside stores/, atomic-commit does not apply...
        assert lint(source, path="src/repro/other.py") == []
        # ...inside it, it does...
        assert rule_names(lint(source, path=STORE_PATH)) == ["atomic-commit"]
        # ...and respect_scope=False forces the rule regardless of path.
        forced = check_source(
            textwrap.dedent(source),
            "src/repro/other.py",
            rules=[AtomicCommitRule()],
            respect_scope=False,
        )
        assert rule_names(forced) == ["atomic-commit"]


class TestSuppressions:
    def test_disable_comment_suppresses_named_rule(self):
        findings = lint(
            """
            try:
                pass
            except Exception:  # flowlint: disable=exception-hygiene
                pass
            """
        )
        assert findings == []

    def test_disable_all_wildcard(self):
        findings = lint(
            """
            try:
                pass
            except Exception:  # flowlint: disable=all
                pass
            """
        )
        assert findings == []

    def test_disable_other_rule_does_not_suppress(self):
        findings = lint(
            """
            try:
                pass
            except Exception:  # flowlint: disable=cache-coherence
                pass
            """
        )
        assert rule_names(findings) == ["exception-hygiene"]

    def test_disable_list_suppresses_every_named_rule(self):
        findings = lint(
            """
            try:
                pass
            except Exception:  # flowlint: disable=cache-coherence,exception-hygiene
                pass
            """
        )
        assert findings == []

    def test_suppression_must_be_on_finding_line(self):
        findings = lint(
            """
            # flowlint: disable=exception-hygiene
            try:
                pass
            except Exception:
                pass
            """
        )
        assert rule_names(findings) == ["exception-hygiene"]


# -- cache-coherence -------------------------------------------------------------


class TestCacheCoherence:
    RULES = [CacheCoherenceRule()]

    def test_counter_write_without_invalidate_flagged(self):
        findings = lint(
            """
            def touch(node, n):
                node.counters.packets += n
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["cache-coherence"]

    def test_counter_write_with_invalidate_passes(self):
        findings = lint(
            """
            def touch(node, n):
                node.counters.packets += n
                node.invalidate_subtree_cache()
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_alias_mutation_tracked(self):
        findings = lint(
            """
            def touch(node, n):
                counters = node.counters
                counters.packets += n
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["cache-coherence"]

    def test_counters_add_call_flagged(self):
        findings = lint(
            """
            def fold(node, other):
                node.counters.add(other)
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["cache-coherence"]

    def test_children_write_needs_attach_or_invalidate(self):
        flagged = lint(
            """
            def link(parent, key, child):
                parent.children[key] = child
            """,
            rules=self.RULES,
        )
        assert rule_names(flagged) == ["cache-coherence"]
        clean = lint(
            """
            def link(parent, key, child):
                parent.attach_child(key, child)
            """,
            rules=self.RULES,
        )
        assert clean == []

    def test_explicit_cache_drop_sanctions(self):
        findings = lint(
            """
            def rebind(node, fresh):
                node.counters = fresh
                node.subtree_cache = None
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_init_self_writes_exempt(self):
        findings = lint(
            """
            class Node:
                def __init__(self):
                    self.counters = object()
                    self.children = {}
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def touch(node, n):
                node.counters.packets += n  # flowlint: disable=cache-coherence
            """,
            rules=self.RULES,
        )
        assert findings == []


# -- atomic-commit ---------------------------------------------------------------


class TestAtomicCommit:
    RULES = [AtomicCommitRule()]

    def test_truncating_open_without_replace_flagged(self):
        findings = lint(
            """
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["atomic-commit"]

    def test_temp_then_replace_passes(self):
        findings = lint(
            """
            import os

            def save(path, tmp, data):
                with open(tmp, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_append_mode_is_the_segment_protocol(self):
        findings = lint(
            """
            def append(path, frame):
                with open(path, "ab") as handle:
                    handle.write(frame)
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_read_mode_and_default_mode_pass(self):
        findings = lint(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_write_text_flagged(self):
        findings = lint(
            """
            def save(path, text):
                path.write_text(text)
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["atomic-commit"]

    def test_suppressed(self):
        findings = lint(
            """
            def save(path, text):
                path.write_text(text)  # flowlint: disable=atomic-commit
            """,
            path=STORE_PATH,
            rules=self.RULES,
        )
        assert findings == []


# -- wire-format ------------------------------------------------------------------


WIRE_MODULE = '''
FORMAT_VERSION = 2
BATCH_FORMAT_VERSION = 1


def encode_varint(value, out):
    """Docstrings are free to change."""
    out.append(value)


def decode_varint(data, offset):
    return data[offset], offset + 1


def encode_zigzag(value, out):
    out.append(value)


def decode_zigzag(data, offset):
    return data[offset], offset + 1


def _encode_string(value, out):
    out.append(value)


def _decode_string(data, offset):
    return data[offset], offset + 1


def to_bytes(tree):
    return b"FTRE"


def summary_header(data):
    return {}


def from_bytes(data):
    return None


def encode_aggregated_batch(items):
    return b"FTAB"


def decode_aggregated_batch(data, schema):
    return [], 0


def _encode_varint_entry(entry, out):
    out.append(entry)


def _decode_varint_entry(data, offset, schema):
    return data[offset], offset + 1


def _fixed_entry_values(entry, kinds):
    return None


def _decode_fixed_section(view, offset, count, codec, items):
    return offset


def _fixed_codec_for_types(types):
    return None
'''


def wire_rule_for(source):
    """A WireFormatRule pinned to ``source``'s own fingerprints."""
    import ast

    manifest = build_manifest(ast.parse(textwrap.dedent(source)))
    return WireFormatRule(manifest=manifest)


class TestWireFormat:
    def test_unchanged_module_passes(self):
        rule = wire_rule_for(WIRE_MODULE)
        assert lint(WIRE_MODULE, path=SERIALIZATION_PATH, rules=[rule]) == []

    def test_docstring_edit_does_not_trip(self):
        rule = wire_rule_for(WIRE_MODULE)
        edited = WIRE_MODULE.replace(
            "Docstrings are free to change.", "Totally new documentation."
        )
        assert lint(edited, path=SERIALIZATION_PATH, rules=[rule]) == []

    def test_body_change_without_bump_flagged(self):
        rule = wire_rule_for(WIRE_MODULE)
        drifted = WIRE_MODULE.replace('return b"FTRE"', 'return b"FTRX"')
        findings = lint(drifted, path=SERIALIZATION_PATH, rules=[rule])
        assert rule_names(findings) == ["wire-format"]
        assert "bump FORMAT_VERSION" in findings[0].message

    def test_shared_primitive_change_flags_both_groups(self):
        rule = wire_rule_for(WIRE_MODULE)
        drifted = WIRE_MODULE.replace(
            "def encode_varint(value, out):\n    \"\"\"Docstrings are free to change.\"\"\"\n    out.append(value)",
            "def encode_varint(value, out):\n    out.append(value + 1)",
        )
        findings = lint(drifted, path=SERIALIZATION_PATH, rules=[rule])
        constants = {f.message.split("but ")[1].split(" is")[0] for f in findings}
        assert constants == {"FORMAT_VERSION", "BATCH_FORMAT_VERSION"}

    def test_version_bump_demands_manifest_regen(self):
        rule = wire_rule_for(WIRE_MODULE)
        bumped = WIRE_MODULE.replace("FORMAT_VERSION = 2", "FORMAT_VERSION = 3")
        findings = lint(bumped, path=SERIALIZATION_PATH, rules=[rule])
        assert rule_names(findings) == ["wire-format"]
        assert "--update-wire-manifest" in findings[0].message

    def test_deleted_pinned_function_flagged(self):
        rule = wire_rule_for(WIRE_MODULE)
        gutted = WIRE_MODULE.replace(
            'def summary_header(data):\n    return {}\n', ""
        )
        findings = lint(gutted, path=SERIALIZATION_PATH, rules=[rule])
        assert rule_names(findings) == ["wire-format"]
        assert "summary_header" in findings[0].message

    def test_fingerprint_ignores_docstring_only(self):
        import ast

        with_doc = ast.parse('def f():\n    """doc"""\n    return 1').body[0]
        without_doc = ast.parse("def f():\n    return 1").body[0]
        changed = ast.parse("def f():\n    return 2").body[0]
        assert fingerprint(with_doc) == fingerprint(without_doc)
        assert fingerprint(with_doc) != fingerprint(changed)

    def test_shipped_manifest_matches_shipped_serialization(self):
        """The committed manifest must be in sync with core/serialization.py."""
        findings, _ = run([str(REPO_ROOT / "src" / "repro" / "core" / "serialization.py")],
                          select=["wire-format"])
        assert findings == []


# -- worker-picklability -----------------------------------------------------------


class TestPicklability:
    RULES = [PicklabilityRule()]

    def test_lambda_process_target_flagged(self):
        findings = lint(
            """
            import multiprocessing

            def spawn():
                worker = multiprocessing.Process(target=lambda: None)
                worker.start()
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["worker-picklability"]

    def test_nested_function_target_flagged(self):
        findings = lint(
            """
            import multiprocessing

            def spawn():
                def body():
                    pass
                worker = multiprocessing.Process(target=body)
                worker.start()
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["worker-picklability"]

    def test_module_level_target_passes(self):
        findings = lint(
            """
            import multiprocessing

            def body():
                pass

            def spawn():
                worker = multiprocessing.Process(target=body)
                worker.start()
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_pool_submission_with_lambda_flagged(self):
        findings = lint(
            """
            def fan_out(pool, items):
                return pool.map(lambda item: item, items)
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["worker-picklability"]

    def test_plain_container_map_not_confused_with_pool(self):
        findings = lint(
            """
            def remap(values):
                return values.map(lambda item: item)
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            import multiprocessing

            def spawn():
                worker = multiprocessing.Process(target=lambda: None)  # flowlint: disable=worker-picklability
                worker.start()
            """,
            rules=self.RULES,
        )
        assert findings == []


# -- fold-determinism ---------------------------------------------------------------


class TestFoldDeterminism:
    RULES = [FoldDeterminismRule()]
    PATH = "src/repro/core/compaction.py"

    def test_loop_over_set_flagged(self):
        findings = lint(
            """
            def fold(victims):
                pending = set(victims)
                for victim in pending:
                    victim.fold()
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["fold-determinism"]

    def test_sorted_wrapper_passes(self):
        findings = lint(
            """
            def fold(victims):
                pending = set(victims)
                for victim in sorted(pending):
                    victim.fold()
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_set_literal_iteration_flagged(self):
        findings = lint(
            """
            def emit(out):
                for value in {3, 1, 2}:
                    out.append(value)
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["fold-determinism"]

    def test_order_insensitive_reduction_passes(self):
        findings = lint(
            """
            def count(victims):
                pending = set(victims)
                total = sum(v.weight for v in pending)
                kept = len([v for v in pending if v.alive])
                return total + kept
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_set_rebuild_comprehension_passes(self):
        findings = lint(
            """
            def survivors(victims):
                pending = set(victims)
                return {v for v in pending if v.alive}
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_list_comprehension_over_set_flagged(self):
        findings = lint(
            """
            def order(victims):
                pending = set(victims)
                return [v.key for v in pending]
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["fold-determinism"]

    def test_out_of_scope_module_not_linted(self):
        findings = lint(
            """
            def fold(victims):
                pending = set(victims)
                for victim in pending:
                    victim.fold()
            """,
            path="src/repro/analysis/report.py",
            rules=self.RULES,
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def fold(victims):
                pending = set(victims)
                for victim in pending:  # flowlint: disable=fold-determinism
                    victim.fold()
            """,
            path=self.PATH,
            rules=self.RULES,
        )
        assert findings == []


# -- exception-hygiene ---------------------------------------------------------------


class TestExceptionHygiene:
    RULES = [ExceptionHygieneRule()]

    def test_bare_except_flagged(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except:
                    pass
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["exception-hygiene"]

    def test_swallowing_broad_except_flagged(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except Exception:
                    pass
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["exception-hygiene"]

    def test_narrow_except_passes(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except OSError:
                    pass
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_reraise_passes(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except Exception:
                    raise
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_using_bound_exception_passes(self):
        findings = lint(
            """
            def f(log):
                try:
                    pass
                except Exception as exc:
                    log.append(exc)
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_reporting_call_passes(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except Exception:
                    print("it failed")
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_broad_tuple_flagged(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except (ValueError, Exception):
                    pass
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["exception-hygiene"]

    def test_suppressed(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except Exception:  # flowlint: disable=exception-hygiene
                    pass
            """,
            rules=self.RULES,
        )
        assert findings == []


class TestFaultReporting:
    RULES = [FaultReportingRule()]

    FAULTS_PATH = "src/repro/distributed/faults.py"
    SUPERVISOR_PATH = "src/repro/distributed/supervisor.py"

    def test_narrow_swallow_in_strict_module_flagged(self):
        """exception-hygiene tolerates narrow swallows; in the fault and
        supervision modules even those must report."""
        source = """
            def check():
                try:
                    pass
                except OSError:
                    pass
            """
        assert rule_names(lint(source, path=self.SUPERVISOR_PATH, rules=self.RULES)) == [
            "fault-reporting"
        ]
        assert rule_names(lint(source, path=self.FAULTS_PATH, rules=self.RULES)) == [
            "fault-reporting"
        ]
        # outside the strict modules a narrow swallow is not this rule's business
        assert lint(source, rules=self.RULES) == []

    def test_reporting_handler_in_strict_module_passes(self):
        findings = lint(
            """
            def check(health):
                try:
                    pass
                except OSError as exc:
                    health.last_error = str(exc)
            """,
            path=self.SUPERVISOR_PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_swallowed_fault_error_flagged_anywhere(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except FaultError:
                    pass
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["fault-reporting"]

    def test_swallowed_fault_error_in_tuple_flagged(self):
        findings = lint(
            """
            import errors

            def f():
                try:
                    pass
                except (OSError, errors.FaultError):
                    pass
            """,
            rules=self.RULES,
        )
        assert rule_names(findings) == ["fault-reporting"]

    def test_handled_fault_error_passes(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except FaultError:
                    raise
            """,
            rules=self.RULES,
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def f():
                try:
                    pass
                except FaultError:  # flowlint: disable=fault-reporting
                    pass
            """,
            rules=self.RULES,
        )
        assert findings == []


# -- lock-discipline (project rule) ---------------------------------------------------

#: Project rules only model files that map into ``repro.*`` modules.
PROJECT_PATH = "src/repro/distributed/sample.py"


class TestLockDiscipline:
    RULES = [LockDisciplineRule()]

    WORKER = """
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._run)
                self._thread.start()

            def _run(self):
                with self._lock:
                    self._count += 1

            def snapshot(self):
                {snapshot_body}
        """

    def worker(self, snapshot_body):
        source = textwrap.dedent(self.WORKER).replace("{snapshot_body}", snapshot_body)
        return check_source(source, PROJECT_PATH, rules=self.RULES)

    def test_lock_free_read_of_guarded_attr_flagged(self):
        findings = self.worker("return self._count")
        assert rule_names(findings) == ["lock-discipline"]
        message = findings[0].message
        assert "Worker._count" in message and "Worker._lock" in message
        assert "Worker._run" in message  # names the racing thread entry point

    def test_read_under_the_guarding_lock_passes(self):
        findings = self.worker(
            "with self._lock:\n            return self._count"
        )
        assert findings == []

    def test_suppressed(self):
        findings = self.worker(
            "return self._count  # flowlint: disable=lock-discipline"
        )
        assert findings == []

    def test_attr_without_thread_entry_point_not_flagged(self):
        """Lock usage alone is not a race: no second thread, no finding."""
        findings = check_source(
            textwrap.dedent(
                """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def snapshot(self):
                        return self._count
                """
            ),
            PROJECT_PATH,
            rules=self.RULES,
        )
        assert findings == []

    def test_guard_transfers_through_private_callee(self):
        """A private helper called only with the lock held inherits it."""
        findings = check_source(
            textwrap.dedent(
                """
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0
                        self._thread = None

                    def start(self):
                        self._thread = threading.Thread(target=self._run)
                        self._thread.start()

                    def _run(self):
                        with self._lock:
                            self._bump()

                    def _bump(self):
                        self._count += 1

                    def snapshot(self):
                        with self._lock:
                            return self._count
                """
            ),
            PROJECT_PATH,
            rules=self.RULES,
        )
        assert findings == []


# -- blocking-in-async (project rule) -------------------------------------------------


class TestBlockingInAsync:
    RULES = [BlockingInAsyncRule()]

    def check(self, source):
        return check_source(textwrap.dedent(source), PROJECT_PATH, rules=self.RULES)

    def test_bare_future_result_in_gather_flagged(self):
        """The PR 7 hang: collecting thread-pool futures on the loop with
        bare ``.result()`` deadlocks when the pool is saturated."""
        findings = self.check(
            """
            async def gather_partials(futures):
                return [future.result() for future in futures]
            """
        )
        assert rule_names(findings) == ["blocking-in-async"]
        assert ".result()" in findings[0].message

    def test_time_sleep_in_sync_callee_of_coroutine_flagged(self):
        """The call graph places helpers on the loop, not just async defs."""
        findings = self.check(
            """
            import time

            def backoff():
                time.sleep(0.1)

            async def poll_loop():
                backoff()
            """
        )
        assert rule_names(findings) == ["blocking-in-async"]
        assert "time.sleep" in findings[0].message

    def test_awaited_asyncio_sleep_passes(self):
        findings = self.check(
            """
            import asyncio

            async def poll_loop():
                await asyncio.sleep(0.1)
            """
        )
        assert findings == []

    def test_result_with_timeout_passes(self):
        findings = self.check(
            """
            async def gather_partials(futures):
                return [future.result(5.0) for future in futures]
            """
        )
        assert findings == []

    def test_queue_get_with_timeout_passes(self):
        findings = self.check(
            """
            async def drain(inbox):
                return inbox.get(timeout=0.5)
            """
        )
        assert findings == []

    def test_sync_only_code_not_flagged(self):
        findings = self.check(
            """
            import time

            def backoff():
                time.sleep(0.1)

            def retry():
                backoff()
            """
        )
        assert findings == []

    def test_suppressed(self):
        findings = self.check(
            """
            import time

            async def poll_loop():
                time.sleep(0.1)  # flowlint: disable=blocking-in-async
            """
        )
        assert findings == []


# -- thread-confinement (project rule) ------------------------------------------------


class TestThreadConfinement:
    DAEMON = """
        import threading

        class Daemon:
            def __init__(self):
                self._pending = []
                self._thread = threading.Thread(target=self._drain)
                {extra_init}

            def _drain(self):
                {drain_body}

            def flush(self):
                {flush_body}

        def pump(daemon: Daemon):
            daemon.flush()
        """

    def check(self, allowed=None, extra_init="self._thread.start()",
              drain_body="self._pending.clear()",
              flush_body="self._pending.append(1)"):
        source = textwrap.dedent(self.DAEMON)
        for slot, body in (("{extra_init}", extra_init),
                           ("{drain_body}", drain_body),
                           ("{flush_body}", flush_body)):
            source = source.replace(slot, body)
        rule = ThreadConfinementRule(
            confined={"Daemon": "test fixture: single-owner by decree"},
            allowed=allowed or {},
        )
        return check_project_sources({PROJECT_PATH: source}, rules=[rule])

    def test_mutation_from_thread_and_main_flagged(self):
        findings = self.check()
        assert rule_names(findings) == ["thread-confinement"]
        message = findings[0].message
        assert "Daemon._drain" in message and "_pending" in message
        assert "<main>" in message  # names both sides of the race

    def test_shared_lock_on_every_entry_point_passes(self):
        findings = self.check(
            extra_init="self._guard = threading.Lock()\n"
            "        self._thread.start()",
            drain_body="with self._guard:\n            self._pending.clear()",
            flush_body="with self._guard:\n            self._pending.append(1)",
        )
        assert findings == []

    def test_single_owner_instance_passes(self):
        """No second entry point: the spawner alone mutates the object."""
        source = textwrap.dedent(
            """
            class Daemon:
                def __init__(self):
                    self._pending = []

                def flush(self):
                    self._pending.append(1)

            def pump(daemon: Daemon):
                daemon.flush()
            """
        )
        rule = ThreadConfinementRule(confined={"Daemon": "test fixture"})
        assert check_project_sources({PROJECT_PATH: source}, rules=[rule]) == []

    def test_allow_list_entry_silences_with_audit_trail(self):
        findings = self.check(
            allowed={"Daemon": "handoff protocol: drain only runs post-join"}
        )
        assert findings == []

    def test_allow_list_is_method_granular(self):
        findings = self.check(
            allowed={"Daemon.other_method": "does not cover _drain"}
        )
        assert rule_names(findings) == ["thread-confinement"]

    def test_suppressed(self):
        findings = self.check(
            drain_body="self._pending.clear()  # flowlint: disable=thread-confinement"
        )
        assert findings == []


# -- CLI: exit codes, formats, selection ----------------------------------------------


class TestCli:
    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return path

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path)]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = self.write(
            tmp_path,
            "dirty.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert main([str(path)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "exception-hygiene" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/path"]) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = self.write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path), "--select", "no-such-rule"]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path):
        path = self.write(
            tmp_path,
            "dirty.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        # exception-hygiene finds it; selecting another rule does not.
        assert main([str(path), "--select", "exception-hygiene"]) == EXIT_FINDINGS
        assert main([str(path), "--select", "worker-picklability"]) == EXIT_CLEAN

    def test_json_report_schema(self, tmp_path, capsys):
        path = self.write(
            tmp_path,
            "dirty.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert main([str(path), "--format", "json"]) == EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == REPORT_VERSION
        assert document["files_checked"] == 1
        assert len(document["findings"]) == 1
        finding = document["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message", "severity"}
        assert finding["rule"] == "exception-hygiene"
        assert finding["severity"] == "error"
        assert finding["line"] >= 1 and finding["col"] >= 1

    def test_parallel_jobs_match_serial(self, tmp_path, capsys):
        """--jobs fans file analysis over processes; findings are identical."""
        dirty = self.write(
            tmp_path,
            "dirty.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        clean = self.write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(dirty), str(clean), "--jobs", "2"]) == EXIT_FINDINGS
        parallel_out = capsys.readouterr().out
        assert main([str(dirty), str(clean)]) == EXIT_FINDINGS
        serial_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "exception-hygiene" in parallel_out

    def test_dump_callgraph_writes_project_model(self, tmp_path, capsys):
        target = REPO_ROOT / "src" / "repro" / "distributed" / "supervisor.py"
        out_path = tmp_path / "callgraph.json"
        assert main([str(target), "--dump-callgraph", str(out_path)]) == EXIT_CLEAN
        dump = json.loads(out_path.read_text())
        assert set(dump) == {"scopes", "thread_roots", "locks"}
        roots = {root["scope"] for root in dump["thread_roots"]}
        assert "repro.distributed.supervisor:Supervisor._run" in roots
        assert dump["locks"]["Supervisor"] == ["_check_lock"]
        check = dump["scopes"]["repro.distributed.supervisor:Supervisor.check"]
        assert "repro.distributed.supervisor:Supervisor._check_one" in check["calls"]

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_flowtree_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self.write(
            tmp_path,
            "dirty.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert cli_main(["lint", str(path)]) == EXIT_FINDINGS
        assert "exception-hygiene" in capsys.readouterr().out
        assert cli_main(["lint", "--list-rules"]) == EXIT_CLEAN


# -- the self-check: the shipped tree is clean ----------------------------------------


class TestShippedTreeIsClean:
    def test_repo_lints_clean(self):
        """`flowtree lint` over the shipped tree reports zero findings.

        This is the gate that turns every rule into an enforced contract:
        reintroducing a cache-incoherent mutation, a torn store write, a
        wire drift, an unpicklable worker target, an unordered fold or a
        swallowed broad except makes this test (and the CI lint job) fail.
        """
        paths = [str(REPO_ROOT / name) for name in ("src", "tests", "benchmarks")]
        findings, files_checked = run(paths)
        assert files_checked > 50
        details = "\n".join(finding.format_text() for finding in findings)
        assert findings == [], f"flowlint findings on the shipped tree:\n{details}"
