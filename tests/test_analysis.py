"""Tests for the analysis layer: histograms, accuracy, storage, heavy hitters, drill-down."""

import pytest

from helpers import key2, key4, make_record
from repro.analysis import (
    AccuracyEvaluator,
    Histogram2D,
    comparison_line,
    error_percentiles,
    format_bytes,
    format_count,
    format_fraction,
    heavy_hitter_report,
    investigate,
    port_profile,
    presence_by_threshold,
    render_kv,
    render_table,
    storage_report,
    stratified_error,
    transfer_report,
)
from repro.baselines import ExactAggregator
from repro.core.config import FlowtreeConfig
from repro.core.flowtree import Flowtree
from repro.core.key import FlowKey
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F
from repro.flows.records import packets_to_flows
from repro.traces import CaidaLikeTraceGenerator, DdosScenario, DdosTraceGenerator


@pytest.fixture(scope="module")
def workload():
    generator = CaidaLikeTraceGenerator(seed=55, flow_population=4_000)
    packets = list(generator.packets(12_000))
    tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=1_500))
    truth = ExactAggregator(SCHEMA_2F_SRC_DST)
    for packet in packets:
        tree.add_record(packet)
        truth.add_record(packet)
    return packets, tree, truth


class TestHistogram2D:
    def test_binning_is_logarithmic(self):
        histogram = Histogram2D(bins_per_decade=1)
        assert histogram.bin_of(0) == 0
        assert histogram.bin_of(1) == 1
        assert histogram.bin_of(9) == 1
        assert histogram.bin_of(10) == 2
        assert histogram.bin_of(999) == 3

    def test_bin_bounds_invert_binning(self):
        histogram = Histogram2D(bins_per_decade=2)
        for value in (1, 5, 42, 980):
            low, high = histogram.bin_bounds(histogram.bin_of(value))
            assert low <= value < high or value < 1

    def test_diagonal_fraction(self):
        histogram = Histogram2D()
        histogram.add_pairs([(10, 10), (100, 100), (10, 1_000)])
        assert histogram.diagonal_fraction() == pytest.approx(2 / 3)
        assert histogram.diagonal_fraction(tolerance_bins=100) == 1.0
        assert Histogram2D().diagonal_fraction() == 0.0

    def test_row_totals_and_max_bin(self):
        histogram = Histogram2D(bins_per_decade=1)
        histogram.add_pairs([(10, 10), (10, 20), (1000, 900)])
        totals = histogram.row_totals()
        assert totals[histogram.bin_of(10)] == 2
        assert histogram.max_bin() >= histogram.bin_of(1000)

    def test_render_produces_grid(self):
        histogram = Histogram2D()
        histogram.add_pairs([(10 ** i, 10 ** i) for i in range(5)] * 3)
        art = histogram.render()
        assert "actual popularity" in art
        assert len(art.splitlines()) > 5
        assert Histogram2D().render() == "(empty histogram)"


class TestAccuracyEvaluator:
    def test_report_matches_paper_shape(self, workload):
        packets, tree, truth = workload
        evaluator = AccuracyEvaluator(truth)
        report = evaluator.evaluate(tree, trace_name="caida-like")
        # Default population: flows kept in the tree (the paper's Fig. 3 population).
        assert 0 < report.query_count <= truth.distinct_flows()
        assert report.node_count == tree.node_count()
        # The paper's headline: > 57 % of entries on the diagonal; allow margin.
        assert report.diagonal_fraction > 0.5
        assert report.near_diagonal_fraction >= report.diagonal_fraction
        assert report.heavy_flow_recall == 1.0
        assert 0.0 <= report.weighted_relative_error < 0.5
        row = report.row()
        assert row["trace"] == "caida-like"
        assert set(row) >= {"diagonal_fraction", "heavy_flow_recall", "nodes"}

    def test_exact_summary_scores_perfectly(self, workload):
        packets, _, truth = workload
        exact_tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=None))
        exact_tree.add_records(packets)
        report = AccuracyEvaluator(truth).evaluate(exact_tree)
        assert report.exact_fraction == 1.0
        assert report.diagonal_fraction == 1.0
        assert report.weighted_relative_error == 0.0

    def test_explicit_query_keys(self, workload):
        _, tree, truth = workload
        keys = list(truth.keys())[:100]
        report = AccuracyEvaluator(truth).evaluate(tree, query_keys=keys)
        assert report.query_count == 100

    def test_error_percentiles(self):
        result = error_percentiles([100, 100, 100], [100, 110, 200], percentiles=(50, 99))
        assert result[50] == pytest.approx(0.1)
        assert result[99] > 0.5
        assert error_percentiles([], []) == {50: 0.0, 90: 0.0, 99: 0.0}


class TestHeavyHitterAnalysis:
    def test_report_finds_all_heavy_flows(self, workload):
        _, tree, truth = workload
        report = heavy_hitter_report(tree, truth, threshold_fraction=0.01)
        assert report.all_heavy_present
        assert report.recall == 1.0
        assert 0.0 < report.precision <= 1.0
        assert set(report.row()) >= {"precision", "recall", "true_heavy"}

    def test_presence_by_threshold_monotone(self, workload):
        _, tree, truth = workload
        presence = presence_by_threshold(tree, truth, fractions=(0.0001, 0.01))
        # Presence at a high threshold implies nothing about the low one, but
        # the 1 % claim of the paper must hold.
        assert presence[0.01] is True

    def test_stratified_error_decreases_with_popularity(self, workload):
        _, tree, truth = workload
        strata = stratified_error(tree, truth, boundaries=(1, 10, 100))
        assert len(strata) == 3
        populated = [s for s in strata if s["flows"] > 0]
        assert populated[0]["mean_relative_error"] >= populated[-1]["mean_relative_error"]
        assert populated[-1]["present_fraction"] >= 0.9


class TestStorageAndTransfer:
    def test_storage_report_reduction(self, workload):
        packets, tree, _ = workload
        flows = list(packets_to_flows(iter(packets)))
        report = storage_report(tree, flows, packet_count=len(packets))
        assert report.flow_count == len(flows)
        assert report.netflow_bytes > 0
        assert report.summary_compressed_bytes < report.summary_bytes
        assert report.reduction_vs_pcap > report.reduction_vs_netflow
        assert len(report.rows()) == 7

    def test_transfer_report(self, workload):
        packets, _, _ = workload
        third = len(packets) // 3
        trees = []
        for i in range(3):
            tree = Flowtree(SCHEMA_2F_SRC_DST, FlowtreeConfig(max_nodes=800))
            tree.add_records(packets[i * third:(i + 1) * third])
            trees.append(tree)
        report = transfer_report(trees, [third] * 3)
        assert report.bins == 3
        assert report.full_bytes > 0
        assert report.diff_bytes <= report.full_bytes
        assert -1.0 <= report.reduction_vs_raw <= 1.0


class TestDrilldownAndReport:
    def test_investigate_identifies_ddos_victim(self):
        scenario = DdosScenario(victim_subnet="203.0.113.0", attack_fraction=0.5,
                                victim_hosts=1)
        packets = list(DdosTraceGenerator(scenario=scenario, seed=3).packets(30_000))
        # Destination-oriented investigations keep the destination specific the
        # longest by generalizing the other features first; see the ABL-POLICY
        # benchmark for the quantitative comparison of policies.
        tree = Flowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=4_000, policy="priority:0,2,3,1")
        )
        tree.add_records(packets)
        start = FlowKey.from_wire(SCHEMA_4F, ("*", "203.0.0.0/8", "*", "*"))
        report = investigate(tree, start, feature_index=1, step=8)
        assert report.total > 10_000
        assert report.path, "expected the drill-down to find a dominant branch"
        deepest = report.path[-1].key[1]
        assert deepest.contains_address(scenario.victim_network | 10)
        assert "explains" in report.verdict
        assert "Investigation" in report.describe()

    def test_investigate_no_traffic(self):
        tree = Flowtree(SCHEMA_2F_SRC_DST)
        report = investigate(tree, key2("10.0.0.0/8", "*"), feature_index=0)
        assert report.total == 0
        assert "no traffic" in report.verdict

    def test_port_profile_names_services(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=2_000))
        tree.add_record(make_record(dport=443, packets=80))
        tree.add_record(make_record(dport=53, packets=20, protocol=17))
        rows = port_profile(tree, FlowKey.root(SCHEMA_4F), port_feature_index=3)
        services = {row["service"] for row in rows}
        assert "https" in services

    def test_render_table_and_kv(self):
        table = render_table([{"a": 1, "b": 2.34567}, {"a": 10, "b": None}])
        assert "a" in table and "2.346" in table and "-" in table
        assert render_table([]) == "(no rows)"
        block = render_kv("Title", {"key": 1.23456, "other": "x"})
        assert block.startswith("Title")
        assert "1.235" in block

    def test_formatters(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2_048) == "2.0 KiB"
        assert format_bytes(5 * 1024 ** 2) == "5.0 MiB"
        assert format_count(1234567) == "1,234,567"
        assert format_fraction(0.9512) == "95.1%"
        assert format_fraction(None) == "-"
        line = comparison_line("diagonal", 0.61, ">0.57")
        assert line["quantity"] == "diagonal"
