"""Process-parallel sharded ingestion: equivalence and fault tolerance.

The executor's contract is the strongest one the codebase makes:

* ``ParallelShardedFlowtree`` must be **byte-identical** to the in-process
  ``ShardedFlowtree`` for any stream, any worker count and any node budget
  — including across compaction boundaries — because both run the same
  partition step and the workers fold the same ``add_aggregated`` calls in
  the same order;
* with compaction disabled both must reproduce the single unsharded tree
  exactly (``items()``, ``total_counters()``, ``estimate()`` and serialized
  bytes);
* a worker crash mid-stream must be invisible: the checkpoint + journal
  replay makes every sub-batch fold exactly once.

Worker pools are reused across hypothesis examples (reset via a
summarize-and-reset round) so the property tests do not pay a process
spawn per example.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SimpleRecord, make_record

from repro.core import (
    Flowtree,
    FlowtreeConfig,
    ParallelShardedFlowtree,
    ShardedFlowtree,
    WorkerError,
    decode_aggregated_batch,
    encode_aggregated_batch,
    from_bytes,
    to_bytes,
)
from repro.core.errors import SerializationError
from repro.core.key import FlowKey
from repro.features.schema import SCHEMA_4F


def _record(src_host, dst_host, sport, dport, packets):
    return SimpleRecord(
        src_ip=(10 << 24) | src_host,
        dst_ip=(192 << 24) | (168 << 16) | dst_host,
        src_port=1024 + sport,
        dst_port=dport,
        packets=packets,
        bytes=packets * 100,
    )


# Small domains force duplicates, shared chain prefixes and shard collisions.
records_strategy = st.lists(
    st.builds(
        _record,
        src_host=st.integers(0, 40),
        dst_host=st.integers(0, 6),
        sport=st.integers(0, 10),
        dport=st.sampled_from([53, 80, 443]),
        packets=st.integers(1, 5),
    ),
    min_size=1,
    max_size=120,
)

UNBOUNDED = FlowtreeConfig(max_nodes=None)
BOUNDED = FlowtreeConfig(max_nodes=64, victim_batch=8)


def _items_map(summary):
    """``items()`` as a per-key counter map (shard roots share one key)."""
    from repro.core import Counters

    totals = {}
    for key, counters in summary.items():
        totals.setdefault(key, Counters()).add(counters)
    return totals

_POOLS = {}


def _pool(num_workers: int, config: FlowtreeConfig) -> ParallelShardedFlowtree:
    """A reusable worker pool, reset to empty shard trees."""
    key = (num_workers, config.max_nodes)
    pool = _POOLS.get(key)
    if pool is None:
        pool = ParallelShardedFlowtree(SCHEMA_4F, config, num_workers=num_workers)
        _POOLS[key] = pool
    else:
        pool.shard_summaries(reset=True)
    return pool


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    while _POOLS:
        _POOLS.popitem()[1].close()


class TestAggregatedBatchWireFormat:
    def test_round_trip_preserves_order_and_counts(self):
        items = [
            (FlowKey.from_record(SCHEMA_4F, make_record(src=f"10.3.{i}.1", sport=2000 + i)),
             3 * i + 1, 50 * i, i % 4)
            for i in range(25)
        ]
        payload = encode_aggregated_batch(items, record_count=123)
        decoded, record_count = decode_aggregated_batch(payload, SCHEMA_4F)
        assert record_count == 123
        assert decoded == items

    def test_negative_counters_round_trip(self):
        # Diff-like payloads carry negative counters; zig-zag must keep them.
        key = FlowKey.from_record(SCHEMA_4F, make_record())
        payload = encode_aggregated_batch([(key, -5, -1_000, -1)], record_count=0)
        decoded, _ = decode_aggregated_batch(payload, SCHEMA_4F)
        assert decoded == [(key, -5, -1_000, -1)]

    def test_bad_magic_and_truncation_raise(self):
        key = FlowKey.from_record(SCHEMA_4F, make_record())
        payload = encode_aggregated_batch([(key, 1, 0, 1)], record_count=1)
        with pytest.raises(SerializationError):
            decode_aggregated_batch(b"XXXX" + payload[4:], SCHEMA_4F)
        with pytest.raises(SerializationError):
            decode_aggregated_batch(payload[:-3], SCHEMA_4F)
        with pytest.raises(SerializationError):
            encode_aggregated_batch([], record_count=-1)


class TestParallelEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy, num_workers=st.sampled_from([1, 2, 4]))
    def test_unbounded_matches_sharded_and_single_tree(self, records, num_workers):
        """Property: parallel == in-process sharded == single tree, exactly."""
        single = Flowtree(SCHEMA_4F, UNBOUNDED)
        for record in records:
            single.add_record(record)
        sharded = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=num_workers)
        sharded.add_batch(records, batch_size=32)

        parallel = _pool(num_workers, UNBOUNDED)
        consumed = parallel.add_batch(records, batch_size=32)
        assert consumed == len(records)

        assert _items_map(parallel) == _items_map(sharded)
        assert parallel.total_counters() == sharded.total_counters() == single.total_counters()
        assert to_bytes(parallel.merged_tree()) == to_bytes(sharded.merged_tree())
        assert to_bytes(parallel.merged_tree()) == to_bytes(single)
        parallel.validate()

        root = FlowKey.root(SCHEMA_4F)
        probe = FlowKey.from_record(SCHEMA_4F, records[0])
        generalized = probe.generalize_feature(0).generalize_feature(3)
        for key in (root, probe, generalized):
            assert parallel.estimate(key).counters == sharded.estimate(key).counters
            assert parallel.estimate(key).counters == single.estimate(key).counters

    @settings(max_examples=15, deadline=None)
    @given(
        records=records_strategy,
        num_workers=st.sampled_from([1, 2, 4]),
        batch_size=st.sampled_from([0, 7, 50]),
    )
    def test_bounded_byte_identical_across_compaction(self, records, num_workers, batch_size):
        """Property: with a tight budget (compaction firing), the parallel
        path still serializes shard-for-shard to the in-process bytes."""
        sharded = ShardedFlowtree(SCHEMA_4F, BOUNDED, num_shards=num_workers)
        sharded.add_batch(records, batch_size=batch_size)

        parallel = _pool(num_workers, BOUNDED)
        parallel.add_batch(records, batch_size=batch_size)

        shard_payloads = parallel.shard_summaries()
        expected = [to_bytes(shard, compress=False) for shard in sharded.shards]
        assert shard_payloads == expected
        assert to_bytes(parallel.merged_tree()) == to_bytes(sharded.merged_tree())

    @settings(max_examples=10, deadline=None)
    @given(records=records_strategy)
    def test_add_records_matches_in_process_per_record_path(self, records):
        sharded = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        assert sharded.add_records(records) == len(records)
        parallel = _pool(2, UNBOUNDED)
        assert parallel.add_records(records) == len(records)
        assert to_bytes(parallel.merged_tree()) == to_bytes(sharded.merged_tree())

    def test_generation_reset_isolates_batches(self, packet_stream_small):
        """summarize-and-reset (the daemon's bin rollover) splits the stream
        into independent generations, each equal to a fresh in-process run."""
        half = len(packet_stream_small) // 2
        parallel = _pool(2, UNBOUNDED)
        parallel.add_batch(packet_stream_small[:half], batch_size=0)
        pending = parallel.begin_summaries(reset=True)
        parallel.add_batch(packet_stream_small[half:], batch_size=0)

        first = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        first.add_batch(packet_stream_small[:half], batch_size=0)
        assert pending.collect() == [to_bytes(s, compress=False) for s in first.shards]

        second = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        second.add_batch(packet_stream_small[half:], batch_size=0)
        assert to_bytes(parallel.merged_tree()) == to_bytes(second.merged_tree())


class TestWorkerFaultTolerance:
    def test_crash_mid_stream_neither_drops_nor_double_counts(self, packet_stream_small):
        reference = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        reference.add_batch(packet_stream_small, batch_size=256)
        with ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=2) as parallel:
            third = len(packet_stream_small) // 3
            parallel.add_batch(packet_stream_small[:third], batch_size=256)
            parallel.inject_worker_failure(0)
            parallel.add_batch(packet_stream_small[third:], batch_size=256)
            assert parallel.total_counters() == reference.total_counters()
            assert to_bytes(parallel.merged_tree()) == to_bytes(reference.merged_tree())
            snapshot = parallel.stats_snapshot()
            assert snapshot["worker_restarts"] == 1
            assert snapshot["records_ingested"] == len(packet_stream_small)

    def test_crash_after_checkpoint_replays_only_the_tail(self, packet_stream_small):
        """A collected summary becomes the checkpoint; the journal replayed
        after a later crash holds only the batches sent since."""
        half = len(packet_stream_small) // 2
        reference = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        reference.add_batch(packet_stream_small, batch_size=128)
        with ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=2) as parallel:
            parallel.add_batch(packet_stream_small[:half], batch_size=128)
            parallel.shard_summaries()   # checkpoint both workers
            parallel.add_batch(packet_stream_small[half:], batch_size=128)
            parallel.inject_worker_failure(1)
            assert parallel.total_counters() == reference.total_counters()
            assert to_bytes(parallel.merged_tree()) == to_bytes(reference.merged_tree())

    def test_crash_with_summary_in_flight_recovers_the_bin(self, packet_stream_small):
        """The daemon's worst case: a worker dies between a bin's
        summarize-and-reset and its collection, with next-bin batches
        already queued behind it.  Both generations must survive."""
        half = len(packet_stream_small) // 2
        with ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=2) as parallel:
            parallel.add_batch(packet_stream_small[:half], batch_size=0)
            pending = parallel.begin_summaries(reset=True)
            parallel.inject_worker_failure(0)
            parallel.add_batch(packet_stream_small[half:], batch_size=0)
            first = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
            first.add_batch(packet_stream_small[:half], batch_size=0)
            assert pending.collect() == [to_bytes(s, compress=False) for s in first.shards]
            second = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
            second.add_batch(packet_stream_small[half:], batch_size=0)
            assert to_bytes(parallel.merged_tree()) == to_bytes(second.merged_tree())
            assert parallel.stats_snapshot()["worker_restarts"] >= 1

    def test_closed_executor_refuses_work(self):
        parallel = ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=1)
        parallel.close()
        parallel.close()   # idempotent
        with pytest.raises(WorkerError):
            parallel.add_batch([make_record()])

    def test_journal_is_bounded_by_periodic_checkpoints(self):
        """Long streams must not grow the replay buffer without bound: the
        executor checkpoints once any journal reaches 256 sub-batches."""
        records = [make_record(sport=1000 + i) for i in range(300)]
        with ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=1) as parallel:
            parallel.add_records(records)   # one sub-batch per record
            snapshot = parallel.stats_snapshot()
            assert snapshot["journal_entries"] < 256
            assert parallel.total_counters().packets == len(records)

    def test_unregistered_schema_rejected_up_front(self):
        from repro.core import ConfigurationError
        from repro.features.schema import FlowSchema

        custom = FlowSchema("4f", ["src_ip", "dst_ip", "src_port", "protocol"])
        with pytest.raises(ConfigurationError):
            ParallelShardedFlowtree(custom, UNBOUNDED, num_workers=1)
        with pytest.raises(ConfigurationError):
            ParallelShardedFlowtree(
                FlowSchema("no-such-schema", ["src_ip"]), UNBOUNDED, num_workers=1
            )


class TestViewFreshness:
    def test_reset_invalidates_cached_queries(self):
        records = [make_record(sport=3000 + i) for i in range(20)]
        parallel = _pool(2, UNBOUNDED)
        parallel.add_batch(records, batch_size=0)
        assert parallel.total_counters().packets == 20   # populates the view
        parallel.shard_summaries(reset=True)
        assert parallel.total_counters().packets == 0
        assert parallel.node_count() == 2   # just the shard roots


class TestComparableStats:
    def test_snapshot_keys_match_in_process_sharded(self, packet_stream_small):
        sharded = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=2)
        sharded.add_batch(packet_stream_small, batch_size=512)
        with ParallelShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_workers=2) as parallel:
            parallel.add_batch(packet_stream_small, batch_size=512)
            in_process = sharded.stats_snapshot()
            executor = parallel.stats_snapshot()
        # The shared vocabulary benchmarks and the daemon compare on.
        for key in ("updates", "inserts", "shards", "nodes", "records_ingested"):
            assert executor[key] == in_process[key], key
        # Executor-only queue/process stats ride along.
        assert executor["workers"] == 2
        assert executor["batches_submitted"] >= 2
        assert executor["submitted_payload_bytes"] > 0
        assert executor["worker_restarts"] == 0
        assert sharded.records_ingested == parallel.records_ingested

    def test_ingested_count_consistent_across_paths(self):
        records = [make_record(sport=2000 + i) for i in range(30)]
        sharded = ShardedFlowtree(SCHEMA_4F, UNBOUNDED, num_shards=3)
        total = 0
        total += sharded.add_records(records[:10])
        total += sharded.add_batch(records[10:25])
        for record in records[25:]:
            sharded.add_record(record)
            total += 1
        assert total == len(records)
        assert sharded.records_ingested == len(records)
        assert sharded.stats_snapshot()["records_ingested"] == len(records)
