"""Tests for generalization policies and the canonical chain builder."""

import pytest

from helpers import key2, key4
from repro.core.config import FlowtreeConfig
from repro.core.errors import ConfigurationError
from repro.core.key import FlowKey
from repro.core.policy import (
    ChainBuilder,
    CoarsestFirstPolicy,
    FieldOrderPolicy,
    GeneralizationPolicy,
    ReverseFieldOrderPolicy,
    RoundRobinPolicy,
    available_policies,
    get_policy,
    register_policy,
    schema_max_specificity,
)
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F, SCHEMA_5F


class TestPolicyRegistry:
    def test_available_policies(self):
        names = available_policies()
        assert "round-robin" in names
        assert "field-order" in names
        assert "reverse-field-order" in names
        assert "coarsest-first" in names

    def test_get_policy(self):
        assert isinstance(get_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(get_policy("field-order"), FieldOrderPolicy)

    def test_get_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            get_policy("alphabetical")

    def test_register_custom_policy(self):
        class AlwaysFirst(GeneralizationPolicy):
            name = "always-first-test"

            def choose_feature(self, specificity, maximum):
                for index, value in enumerate(specificity):
                    if value:
                        return index
                return 0

        register_policy(AlwaysFirst)
        assert isinstance(get_policy("always-first-test"), AlwaysFirst)

    def test_register_rejects_default_name(self):
        class Nameless(GeneralizationPolicy):
            name = "abstract"

            def choose_feature(self, specificity, maximum):
                return 0

        with pytest.raises(ConfigurationError):
            register_policy(Nameless)

    def test_register_rejects_non_policy(self):
        with pytest.raises(ConfigurationError):
            register_policy(dict)


class TestSchemaMaxSpecificity:
    def test_4f(self):
        assert schema_max_specificity(SCHEMA_4F) == (32, 32, 16, 16)

    def test_5f_includes_protocol(self):
        assert schema_max_specificity(SCHEMA_5F) == (1, 32, 32, 16, 16)


class TestPolicyChoices:
    def test_round_robin_prefers_highest_ratio(self):
        policy = RoundRobinPolicy()
        assert policy.choose_feature((32, 16, 16, 16), (32, 32, 16, 16)) in (0, 2, 3)
        # When src is half generalized but ports are full, ports win.
        assert policy.choose_feature((16, 16, 16, 16), (32, 32, 16, 16)) == 2

    def test_field_order_walks_left_to_right(self):
        policy = FieldOrderPolicy()
        assert policy.choose_feature((4, 32, 16, 16), (32, 32, 16, 16)) == 0
        assert policy.choose_feature((0, 32, 16, 16), (32, 32, 16, 16)) == 1

    def test_reverse_field_order(self):
        policy = ReverseFieldOrderPolicy()
        assert policy.choose_feature((32, 32, 16, 16), (32, 32, 16, 16)) == 3
        assert policy.choose_feature((32, 32, 16, 0), (32, 32, 16, 16)) == 2

    def test_coarsest_first(self):
        policy = CoarsestFirstPolicy()
        assert policy.choose_feature((4, 32, 0, 0), (32, 32, 16, 16)) == 0


class TestChainBuilder:
    @pytest.fixture
    def builder(self):
        return ChainBuilder.for_schema(SCHEMA_4F, RoundRobinPolicy(), ip_stride=4, port_stride=4)

    def test_level_sets_respect_strides(self, builder):
        assert builder.level_sets[0] == tuple(range(32, -1, -4))
        assert builder.level_sets[2] == tuple(range(16, -1, -4))

    def test_max_specificity(self, builder):
        assert builder.max_specificity == (32, 32, 16, 16)

    def test_parent_snaps_to_grid(self, builder):
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        parent = builder.parent(key)
        assert parent.contains(key)
        assert parent != key
        assert parent.specificity < key.specificity

    def test_parent_of_off_grid_key_snaps_down(self, builder):
        key = key4("10.0.0.0/30", "*", "*", "*")
        parent = builder.parent(key)
        assert parent.specificity_vector == (28, 0, 0, 0)

    def test_chain_reaches_root(self, builder):
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        chain = list(builder.chain(key))
        assert chain[-1].is_root
        assert builder.chain_length(key) == len(chain)
        # Every element contains its predecessor (monotone generalization).
        previous = key
        for ancestor in chain:
            assert ancestor.contains(previous)
            previous = ancestor

    def test_chain_length_matches_trajectory(self, builder):
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        assert builder.chain_length(key) == len(builder.trajectory()) - 1

    def test_trajectory_starts_full_ends_root(self, builder):
        trajectory = builder.trajectory()
        assert trajectory[0] == (32, 32, 16, 16)
        assert trajectory[-1] == (0, 0, 0, 0)
        # Strictly decreasing total specificity.
        totals = [sum(level) for level in trajectory]
        assert totals == sorted(totals, reverse=True)
        assert len(set(trajectory)) == len(trajectory)

    def test_containment_implies_chain_membership(self, builder):
        """The structural property the Flowtree relies on (DESIGN.md §5)."""
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        chain = list(builder.chain(key))
        trajectory = set(builder.trajectory())
        for ancestor in chain:
            assert ancestor.specificity_vector in trajectory
        # Any trajectory-aligned generalization of the key equals the chain
        # element at that level.
        for level in builder.trajectory()[1:]:
            projected = key.generalize_to_vector(level)
            assert projected in chain

    def test_different_policies_give_different_chains(self):
        key = key4("10.1.2.3", "192.0.2.9", "1234", "443")
        chains = {}
        for name in ("round-robin", "field-order", "reverse-field-order"):
            builder = ChainBuilder.for_schema(SCHEMA_4F, get_policy(name), 4, 4)
            chains[name] = tuple(k.specificity_vector for k in builder.chain(key))
        assert chains["field-order"] != chains["reverse-field-order"]
        assert chains["round-robin"] != chains["field-order"]

    def test_rejects_level_set_without_root(self):
        with pytest.raises(ConfigurationError):
            ChainBuilder(RoundRobinPolicy(), [(32, 16), (32, 16, 0)])

    def test_builder_for_two_feature_schema(self):
        builder = ChainBuilder.for_schema(SCHEMA_2F_SRC_DST, RoundRobinPolicy(), 8, 8)
        key = key2("10.1.2.3", "192.0.2.9")
        assert builder.chain_length(key) == 8
