"""Tests for the ``flowtree`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.serialization import from_bytes


@pytest.fixture(scope="module")
def trace_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.csv"
    assert main(["generate", "--kind", "caida", "--packets", "8000", "--seed", "3",
                 str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def summary_file(tmp_path_factory, trace_csv):
    path = tmp_path_factory.mktemp("cli") / "summary.ft"
    assert main(["build", "--schema", "4f", "--max-nodes", "1000",
                 str(trace_csv), str(path)]) == 0
    return path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "build", "info", "query", "top", "merge", "diff", "drilldown"):
            assert command in text

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_creates_csv(self, trace_csv):
        header = trace_csv.read_text().splitlines()[0]
        assert header.startswith("start_time,")

    def test_generate_pcap(self, tmp_path):
        path = tmp_path / "trace.pcap"
        assert main(["generate", "--kind", "scan", "--packets", "2000",
                     "--format", "pcap", str(path)]) == 0
        assert path.stat().st_size > 1_000

    def test_build_produces_loadable_summary(self, summary_file):
        tree = from_bytes(summary_file.read_bytes())
        assert tree.schema.name == "4f"
        assert 1 < tree.node_count() <= 1_000
        assert tree.total_counters().packets == 8_000

    def test_build_workers_matches_in_process_shards(self, trace_csv, tmp_path, capsys):
        by_workers = tmp_path / "workers.ft"
        by_shards = tmp_path / "shards.ft"
        assert main(["build", "--max-nodes", "1000", "--workers", "2",
                     str(trace_csv), str(by_workers)]) == 0
        assert "via 2 worker processes" in capsys.readouterr().out
        assert main(["build", "--max-nodes", "1000", "--shards", "2",
                     str(trace_csv), str(by_shards)]) == 0
        assert by_workers.read_bytes() == by_shards.read_bytes()

    def test_build_single_worker_still_uses_a_process(self, trace_csv, tmp_path, capsys):
        path = tmp_path / "one.ft"
        assert main(["build", "--max-nodes", "1000", "--workers", "1",
                     str(trace_csv), str(path)]) == 0
        assert "via 1 worker process" in capsys.readouterr().out
        tree = from_bytes(path.read_bytes())
        assert tree.total_counters().packets == 8_000

    def test_build_workers_conflicting_shards_fails(self, trace_csv, tmp_path, capsys):
        assert main(["build", "--workers", "4", "--shards", "2",
                     str(trace_csv), str(tmp_path / "x.ft")]) == 1
        assert "conflicts" in capsys.readouterr().err

    def test_build_compaction_modes(self, trace_csv, tmp_path):
        """--compaction forces a strategy; every mode conserves the totals."""
        trees = {}
        for mode in ("auto", "incremental", "rebuild"):
            path = tmp_path / f"{mode}.ft"
            assert main(["build", "--max-nodes", "64", "--compaction", mode,
                         str(trace_csv), str(path)]) == 0
            trees[mode] = from_bytes(path.read_bytes())
        for mode, tree in trees.items():
            assert tree.total_counters().packets == 8_000, mode
            assert tree.node_count() <= 64, mode

    def test_build_rejects_unknown_compaction(self, trace_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "--compaction", "bulk",
                  str(trace_csv), str(tmp_path / "x.ft")])

    def test_info(self, summary_file, capsys):
        assert main(["info", str(summary_file)]) == 0
        output = capsys.readouterr().out
        assert "schema" in output and "4f" in output
        assert "packets" in output and "8000" in output

    def test_query_wildcards(self, summary_file, capsys):
        assert main(["query", str(summary_file), "*", "*", "*", "443"]) == 0
        output = capsys.readouterr().out
        assert "estimate" in output

    def test_top(self, summary_file, capsys):
        assert main(["top", str(summary_file), "-n", "5"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") >= 6  # header + separator + 5 rows

    def test_merge_and_diff(self, summary_file, tmp_path, capsys):
        merged = tmp_path / "merged.ft"
        assert main(["merge", str(summary_file), str(summary_file), "-o", str(merged)]) == 0
        tree = from_bytes(merged.read_bytes())
        assert tree.total_counters().packets == 16_000

        delta = tmp_path / "delta.ft"
        assert main(["diff", str(merged), str(summary_file), "-o", str(delta)]) == 0
        assert from_bytes(delta.read_bytes()).total_counters().packets == 8_000

    def test_drilldown(self, summary_file, capsys):
        assert main(["drilldown", str(summary_file), "*", "*", "*", "*", "--feature", "0"]) == 0
        output = capsys.readouterr().out
        assert "Investigation" in output

    def test_collect_supervised_reports_health(self, trace_csv, capsys):
        assert main(["collect", "--schema", "4f", "--site", "edge-1",
                     "--supervised", str(trace_csv)]) == 0
        output = capsys.readouterr().out
        assert "Supervisor health" in output
        assert "healthy" in output
        assert "restarts" in output

    def test_error_paths_return_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.ft"
        assert main(["info", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_build_rejects_unknown_schema(self, trace_csv, tmp_path, capsys):
        out = tmp_path / "x.ft"
        assert main(["build", "--schema", "17f", str(trace_csv), str(out)]) == 1
        assert "error:" in capsys.readouterr().err
