"""Query-index maintenance: indexed answers vs the naive reference walker.

The indexed query engine (cached subtree aggregates + per-level token
projections, :mod:`repro.core.query`) must answer byte-identically to the
index-free walkers in :mod:`repro.core.reference` — after *every* mutation
kind a Flowtree supports.  Queries are interleaved between mutations on
purpose: a warm cache that survives a mutation it should not survive shows
up as a hard mismatch here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SimpleRecord, key4

from repro.core import (
    Flowtree,
    FlowtreeConfig,
    ShardedFlowtree,
    children_of,
    decompose,
    drill_down,
    estimate_many,
    from_bytes,
    merge_all,
    to_bytes,
)
from repro.core.key import FlowKey
from repro.core.reference import (
    walk_children_of,
    walk_decompose,
    walk_drill_down,
    walk_estimate,
)
from repro.features.schema import SCHEMA_4F


def _record(src_host, dst_host, sport, dport, packets):
    return SimpleRecord(
        src_ip=(10 << 24) | src_host,
        dst_ip=(192 << 24) | (168 << 16) | dst_host,
        src_port=1024 + sport,
        dst_port=dport,
        packets=packets,
        bytes=packets * 100,
    )


records_strategy = st.lists(
    st.builds(
        _record,
        src_host=st.integers(0, 60),
        dst_host=st.integers(0, 5),
        sport=st.integers(0, 8),
        dport=st.sampled_from([53, 80, 443]),
        packets=st.integers(1, 6),
    ),
    min_size=1,
    max_size=100,
)

config_strategy = st.sampled_from(
    [
        FlowtreeConfig(max_nodes=None),
        FlowtreeConfig(max_nodes=64, victim_batch=8, compaction="incremental"),
        FlowtreeConfig(max_nodes=64, victim_batch=8, compaction="rebuild"),
        FlowtreeConfig(max_nodes=64, victim_batch=8, compaction="auto"),
    ]
)


def _query_keys(records):
    """Kept, absent-specific, generalized on/off-trajectory, and root keys."""
    keys = [FlowKey.from_record(SCHEMA_4F, record) for record in records[:6]]
    keys.append(
        FlowKey.from_record(SCHEMA_4F, _record(61, 6, 9, 8080, 1))
    )  # never in the stream
    generalized = []
    for index, key in enumerate(keys):
        for feature_index in range(index % 4 + 1):
            key = key.generalize_feature(feature_index)
        generalized.append(key)
        # A clearly off-trajectory lattice point: one feature wide open.
        generalized.append(key.generalize_feature_to(index % 4, 0))
    keys.extend(generalized)
    keys.append(key4("10.0.0.0/8", "*", "*", "*"))
    keys.append(FlowKey.root(SCHEMA_4F))
    return keys


def _assert_same_estimate(tree, key):
    indexed = tree.estimate(key)
    naive = walk_estimate(tree, key)
    assert indexed.counters == naive.counters, key.pretty()
    assert indexed.exact_node == naive.exact_node, key.pretty()
    assert indexed.from_descendants == naive.from_descendants, key.pretty()
    assert indexed.from_ancestor == naive.from_ancestor, key.pretty()


def _assert_indexed_matches_reference(tree, records):
    keys = _query_keys(records)
    for key in keys:
        _assert_same_estimate(tree, key)
        terms = decompose(tree, key)
        naive_terms = walk_decompose(tree, key)
        assert [(t.key, t.kind, t.value) for t in terms] == naive_terms, key.pretty()
    answers = estimate_many(tree, keys)
    for key in keys:
        single = tree.estimate(key)
        assert answers[key].counters == single.counters
        assert answers[key].exact_node == single.exact_node
    root = FlowKey.root(SCHEMA_4F)
    for feature_index in range(4):
        assert children_of(tree, root, feature_index, step=4) == walk_children_of(
            tree, root, feature_index, step=4
        )
    path = drill_down(tree, root, 0, step=4, dominance=0.4)
    naive_path = walk_drill_down(tree, root, 0, step=4, dominance=0.4)
    assert [(s.key, s.value, s.share_of_parent, s.depth) for s in path] == naive_path
    # The cached root aggregate must equal the sum of every kept counter.
    total = tree.total_counters()
    packets = sum(counters.packets for _, counters in tree.items())
    assert total.packets == packets


class TestIndexMaintenance:
    @settings(max_examples=20, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_add_batch_then_per_record_adds(self, records, config):
        tree = Flowtree(SCHEMA_4F, config)
        half = max(1, len(records) // 2)
        tree.add_batch(records[:half], batch_size=0)
        _assert_indexed_matches_reference(tree, records)
        # Mutate *after* the caches are warm, one record at a time.
        for record in records[half:]:
            tree.add_record(record)
            _assert_same_estimate(tree, FlowKey.from_record(SCHEMA_4F, record))
        _assert_indexed_matches_reference(tree, records)

    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy)
    def test_incremental_compaction_invalidates(self, records):
        tree = Flowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=4096, compaction="incremental")
        )
        tree.add_batch(records, batch_size=0)
        _assert_indexed_matches_reference(tree, records)
        tree.compact(target_nodes=max(16, len(tree) // 2))
        tree.validate()
        _assert_indexed_matches_reference(tree, records)

    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy)
    def test_rebuild_compaction_invalidates(self, records):
        tree = Flowtree(
            SCHEMA_4F, FlowtreeConfig(max_nodes=4096, compaction="rebuild")
        )
        tree.add_batch(records, batch_size=0)
        _assert_indexed_matches_reference(tree, records)
        tree.compact(target_nodes=max(16, len(tree) // 2))
        tree.validate()
        _assert_indexed_matches_reference(tree, records)

    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_merge_after_queries(self, records, config):
        half = max(1, len(records) // 2)
        left = Flowtree(SCHEMA_4F, config)
        left.add_batch(records[:half], batch_size=0)
        right = Flowtree(SCHEMA_4F, config)
        right.add_batch(records[half:], batch_size=0)
        _assert_indexed_matches_reference(left, records)
        left.merge(right)
        _assert_indexed_matches_reference(left, records)

    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_deserialization_round_trip(self, records, config):
        tree = Flowtree(SCHEMA_4F, config)
        tree.add_batch(records, batch_size=0)
        decoded = from_bytes(to_bytes(tree))
        _assert_indexed_matches_reference(decoded, records)
        for key in _query_keys(records):
            assert decoded.estimate(key).counters == tree.estimate(key).counters

    @settings(max_examples=10, deadline=None)
    @given(records=records_strategy)
    def test_diff_and_prune_invalidate(self, records):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        tree.add_batch(records, batch_size=0)
        _assert_indexed_matches_reference(tree, records)
        delta = tree.diff(tree)
        assert delta.total_counters().is_zero
        delta.prune_zero_nodes()
        _assert_indexed_matches_reference(delta, records)


class TestQueryApiContracts:
    def test_wrong_arity_keys_raise_query_error(self):
        import pytest

        from repro.core.errors import QueryError
        from repro.features.schema import SCHEMA_2F_SRC_DST

        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        tree.add_record(_record(1, 1, 1, 80, 1))
        bad = FlowKey.root(SCHEMA_2F_SRC_DST)
        with pytest.raises(QueryError):
            tree.estimate(bad)
        with pytest.raises(QueryError):
            decompose(tree, bad)
        with pytest.raises(QueryError):
            estimate_many(tree, [bad])

    def test_estimate_equality_is_field_based(self):
        tree = Flowtree(SCHEMA_4F, FlowtreeConfig(max_nodes=None))
        tree.add_record(_record(1, 1, 1, 80, 3))
        key = FlowKey.from_record(SCHEMA_4F, _record(1, 1, 1, 80, 3))
        assert tree.estimate(key) == tree.estimate(key)
        assert tree.estimate(key) != tree.estimate(FlowKey.root(SCHEMA_4F))


class TestShardedEstimates:
    @settings(max_examples=10, deadline=None)
    @given(records=records_strategy, config=config_strategy)
    def test_sharded_estimate_many_matches_per_key(self, records, config):
        sharded = ShardedFlowtree(SCHEMA_4F, config, num_shards=4)
        sharded.add_batch(records)
        keys = _query_keys(records)
        answers = sharded.estimate_many(keys)
        for key in keys:
            single = sharded.estimate(key)
            assert answers[key].counters == single.counters
            assert answers[key].exact_node == single.exact_node
            assert answers[key].from_descendants == single.from_descendants
            assert answers[key].from_ancestor == single.from_ancestor


class TestMergeMany:
    @settings(max_examples=15, deadline=None)
    @given(records=records_strategy, parts=st.integers(4, 6))
    def test_fold_path_identical_to_pairwise_when_unbounded(self, records, parts):
        config = FlowtreeConfig(max_nodes=None)
        trees = []
        for index in range(parts):
            tree = Flowtree(SCHEMA_4F, config)
            tree.add_batch(records[index::parts], batch_size=0)
            trees.append(tree)
        slow = Flowtree(SCHEMA_4F, config)
        for tree in trees:
            slow.merge(tree)
        fast = Flowtree(SCHEMA_4F, config)
        fast.merge_many(trees)
        assert fast.stats.rebuilds == 1  # the token-space fold actually ran
        assert to_bytes(fast) == to_bytes(slow)
        assert fast.stats.merged_trees == slow.stats.merged_trees
        _assert_indexed_matches_reference(fast, records)

    @settings(max_examples=10, deadline=None)
    @given(records=records_strategy, parts=st.integers(4, 5))
    def test_fold_path_conserves_counters_when_bounded(self, records, parts):
        config = FlowtreeConfig(max_nodes=64, victim_batch=8)
        trees = []
        for index in range(parts):
            tree = Flowtree(SCHEMA_4F, config)
            tree.add_batch(records[index::parts], batch_size=0)
            trees.append(tree)
        slow = Flowtree(SCHEMA_4F, config)
        for tree in trees:
            slow.merge(tree)
        fast = Flowtree(SCHEMA_4F, config)
        fast.merge_many(trees)
        fast.validate()
        assert fast.total_counters() == slow.total_counters()
        assert len(fast) <= config.max_nodes
        _assert_indexed_matches_reference(fast, records)

    def test_small_inputs_use_the_pairwise_path(self):
        config = FlowtreeConfig(max_nodes=None)
        trees = []
        for index in range(3):
            tree = Flowtree(SCHEMA_4F, config)
            tree.add(key4(f"10.0.0.{index + 1}", "*", "*", "*"), packets=index + 1)
            trees.append(tree)
        merged = merge_all(trees)
        assert merged.stats.rebuilds == 0  # below MERGE_FOLD_MIN_TREES
        assert merged.total_counters().packets == 6
