"""Shared helpers for the Flowtree test suite.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which breaks as soon as another directory's
``conftest.py`` (e.g. ``benchmarks/conftest.py``) wins the race for the
top-level ``conftest`` module name.  Test modules now import them
explicitly from this module; ``conftest.py`` keeps only fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.key import FlowKey
from repro.features.ipaddr import ipv4_to_int
from repro.features.schema import SCHEMA_2F_SRC_DST, SCHEMA_4F


@dataclass
class SimpleRecord:
    """Minimal duck-typed record used by core tests (no timestamps needed)."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6
    packets: int = 1
    bytes: int = 100


def make_record(
    src: str = "1.1.1.1",
    dst: str = "2.2.2.2",
    sport: int = 1234,
    dport: int = 80,
    protocol: int = 6,
    packets: int = 1,
    bytes: int = 100,
) -> SimpleRecord:
    """Convenience constructor taking dotted-quad addresses."""
    return SimpleRecord(
        src_ip=ipv4_to_int(src),
        dst_ip=ipv4_to_int(dst),
        src_port=sport,
        dst_port=dport,
        protocol=protocol,
        packets=packets,
        bytes=bytes,
    )


@dataclass
class TimedRecord(SimpleRecord):
    """A :class:`SimpleRecord` with a timestamp, for daemon/bin tests."""

    timestamp: float = 0.0


def make_timed_record(timestamp: float, **kwargs) -> TimedRecord:
    """Convenience constructor: a timestamped record with dotted-quad addresses."""
    base = make_record(**kwargs)
    return TimedRecord(timestamp=timestamp, **base.__dict__)


def key4(src: str, dst: str, sport: str, dport: str) -> FlowKey:
    """Build a 4-feature key from wire strings ('*' for wildcards)."""
    return FlowKey.from_wire(SCHEMA_4F, (src, dst, sport, dport))


def key2(src: str, dst: str) -> FlowKey:
    """Build a 2-feature key from wire strings."""
    return FlowKey.from_wire(SCHEMA_2F_SRC_DST, (src, dst))


__all__ = [
    "SimpleRecord",
    "TimedRecord",
    "make_record",
    "make_timed_record",
    "key4",
    "key2",
]
