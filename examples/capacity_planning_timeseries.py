#!/usr/bin/env python3
"""Capacity planning over time-binned summaries + storage/transfer accounting.

Shows the "time" dimension of the paper's envisioned system: one Flowtree
per time bin, range queries by merging bins, per-aggregate time series for
trending, and the two cost claims measured on the same data:

* storage — serialized summaries vs. raw NetFlow/CSV captures, and
* transfer — shipping diffs of consecutive summaries vs. full summaries.

Usage::

    python examples/capacity_planning_timeseries.py [packet_count] [bins]
"""

from __future__ import annotations

import sys

from repro import FlowtreeConfig, FlowKey, SCHEMA_2F_SRC_DST
from repro.analysis.report import format_bytes, format_fraction, render_table
from repro.analysis.storage import storage_report, transfer_report
from repro.distributed import FlowtreeTimeSeries
from repro.flows.records import packets_to_flows
from repro.traces import CaidaLikeTraceGenerator


def main(packet_count: int = 240_000, bins: int = 8) -> None:
    generator = CaidaLikeTraceGenerator(seed=21, flow_population=packet_count // 4)
    packets = list(generator.packets(packet_count))
    duration = packets[-1].timestamp - packets[0].timestamp
    bin_width = duration / bins + 1e-9

    series = FlowtreeTimeSeries(
        SCHEMA_2F_SRC_DST, bin_width, config=FlowtreeConfig(max_nodes=6_000)
    )
    series.add_records(packets)
    print(f"built {len(series)} bins of {bin_width:.3f}s over {packet_count:,} packets\n")

    # --- Per-bin totals (the capacity-planning curve) -------------------------------
    totals = series.total_by_bin()
    print(render_table(
        [{"bin": index, "packets": value} for index, value in sorted(totals.items())]
    ), "\n")

    # --- A per-aggregate trend: the busiest /8 over time -----------------------------
    merged = series.merged_range()
    busiest_key, _ = max(
        ((key, value) for key, value in merged.top(200)
         if key[0].specificity == 8 and key[1].is_root),
        key=lambda item: item[1],
        default=(None, 0),
    )
    if busiest_key is None:
        busiest_key = FlowKey.from_wire(SCHEMA_2F_SRC_DST, ("*", "*"))
    trend = series.series(busiest_key)
    print(f"trend of {busiest_key.pretty()}:")
    print(render_table(
        [{"bin": index, "packets": value} for index, value in sorted(trend.items())]
    ), "\n")

    # --- Storage: summaries vs raw captures -------------------------------------------
    flows = list(packets_to_flows(iter(packets)))
    report = storage_report(merged, flows, packet_count=packet_count)
    print("storage comparison (whole capture vs one merged summary):")
    print(render_table(report.rows()))
    print(f"reduction vs NetFlow v5: {format_fraction(report.reduction_vs_netflow)}")
    print(f"reduction vs CSV:        {format_fraction(report.reduction_vs_csv)}\n")

    # --- Transfer: full summaries vs consecutive diffs ---------------------------------
    per_bin_trees = [tree for _, tree in series.bins()]
    flows_per_bin = [max(1, len(flows) // bins)] * bins
    transfer = transfer_report(per_bin_trees, flows_per_bin)
    print("transfer comparison (per-bin export to a collector):")
    print(render_table([
        {"strategy": "raw NetFlow v5", "bytes": format_bytes(transfer.raw_netflow_bytes)},
        {"strategy": "full summaries", "bytes": format_bytes(transfer.full_bytes)},
        {"strategy": "diff summaries", "bytes": format_bytes(transfer.diff_bytes)},
    ]))
    print(f"diff savings vs full summaries: {format_fraction(transfer.diff_savings)}")
    print(f"reduction vs raw export:        {format_fraction(transfer.reduction_vs_raw)}")


if __name__ == "__main__":
    packet_count = int(sys.argv[1]) if len(sys.argv) > 1 else 240_000
    bin_count = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(packet_count, bin_count)
