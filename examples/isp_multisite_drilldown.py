#!/usr/bin/env python3
"""Fig. 1 scenario: five ISP sites, per-peer volume queries and drill-down.

Reproduces the workflow from the paper's introduction:

* "what is the total volume of traffic sent by one of its peers to all of
  five ISP's sites in the last 24 hours?" — answered with one distributed
  query over the per-site summaries, and
* "IP address range X/8 has received a lot of traffic; is it due to a
  specific IP, a specific /24, or what is happening?" — answered with an
  automated drill-down on the merged summary.

Each site runs a Flowtree daemon that exports diff-encoded per-bin
summaries to a central collector over a byte-accounted simulated transport,
so the script also prints how little data actually had to move.

Usage::

    python examples/isp_multisite_drilldown.py [packets_per_site]
"""

from __future__ import annotations

import sys

from repro import FlowtreeConfig, SCHEMA_2F_SRC_DST
from repro.analysis.report import format_bytes, render_table
from repro.distributed import Deployment
from repro.flows.netflow import raw_export_size
from repro.traces import EnterpriseTraceGenerator

SITES = ("ams", "fra", "lon", "par", "mad")


def main(packets_per_site: int = 25_000) -> None:
    deployment = Deployment(
        SCHEMA_2F_SRC_DST,
        SITES,
        bin_width=600.0,
        daemon_config=FlowtreeConfig(max_nodes=6_000),
        use_diffs=True,
    )

    # Each site sees its own inbound traffic (same peers, different customers).
    total_flows = 0
    for index, site in enumerate(SITES):
        generator = EnterpriseTraceGenerator(
            site_prefix=f"100.{64 + index}.0.0", seed=100 + index
        )
        packets = list(generator.packets(packets_per_site))
        total_flows += len({p.five_tuple for p in packets})
        deployment.attach_records(site, packets)
    peers = EnterpriseTraceGenerator(seed=0).peers

    consumed = deployment.run()
    print(f"replayed {sum(consumed.values()):,} packets across {len(SITES)} sites\n")

    # --- Query 1: per-peer volume across all sites ------------------------------
    engine = deployment.query_engine
    rows = []
    for peer in peers:
        response = engine.volume((f"{peer.prefix}/{peer.prefix_bits}", "*"))
        rows.append(
            {
                "peer": peer.name,
                "prefix": f"{peer.prefix}/{peer.prefix_bits}",
                "total_packets": response.total,
                **{site: response.per_site.get(site, 0) for site in SITES},
            }
        )
    rows.sort(key=lambda row: row["total_packets"], reverse=True)
    print("per-peer volume towards all five sites:")
    print(render_table(rows), "\n")

    # --- Query 2: drill into the busiest peer ------------------------------------
    busiest = rows[0]
    print(f"drilling into {busiest['peer']} ({busiest['prefix']}) by source prefix:")
    for step in engine.investigate((busiest["prefix"], "*"), feature_index=0):
        print(f"  depth {step.depth}: {step.key.pretty()} "
              f"{step.value:,} packets ({step.share_of_parent * 100:.0f}% of parent)")
    breakdown = engine.breakdown((busiest["prefix"], "*"), feature_index=0, step=8)
    print("\ntop source /16-style contributors inside the peer:")
    print(render_table(
        [{"key": key.pretty(), "packets": value} for key, value in breakdown[:5]]
    ), "\n")

    # --- Transfer accounting -------------------------------------------------------
    shipped = deployment.transfer_bytes()
    raw = raw_export_size(total_flows)
    print(f"summary bytes shipped to the collector: {format_bytes(shipped)}")
    print(f"raw NetFlow v5 export of the same flows: {format_bytes(raw)}")
    print(f"transfer reduction: {(1 - shipped / raw) * 100:.1f}%")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    main(count)
