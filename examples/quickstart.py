#!/usr/bin/env python3
"""Quickstart: build a Flowtree, query it, merge and diff summaries.

Runs in a few seconds on a laptop.  The workload is a synthetic
backbone-like (CAIDA-style) packet stream; see DESIGN.md §4 for why a
synthetic trace is a faithful stand-in for the captures the paper used.

Usage::

    python examples/quickstart.py [packet_count]
"""

from __future__ import annotations

import sys

from repro import Flowtree, FlowtreeConfig, FlowKey, SCHEMA_4F
from repro.analysis.report import format_bytes, render_table
from repro.core.serialization import to_bytes
from repro.traces import CaidaLikeTraceGenerator


def main(packet_count: int = 200_000) -> None:
    # 1. Build a Flowtree over a packet stream ---------------------------------
    config = FlowtreeConfig(max_nodes=20_000)
    tree = Flowtree(SCHEMA_4F, config)
    generator = CaidaLikeTraceGenerator(seed=7, flow_population=packet_count // 3)
    print(f"summarizing {packet_count:,} packets ...")
    tree.add_records(generator.packets(packet_count))
    print(f"kept {tree.node_count():,} nodes for {tree.stats.updates:,} updates "
          f"({format_bytes(len(to_bytes(tree)))} serialized)\n")

    # 2. Query: most popular aggregates and one hierarchical estimate ----------
    print("top aggregates by complementary popularity:")
    rows = [
        {"rank": i + 1, "key": key.pretty(), "packets": value}
        for i, (key, value) in enumerate(tree.top(8))
    ]
    print(render_table(rows), "\n")

    https_everywhere = FlowKey.from_wire(SCHEMA_4F, ("*", "*", "*", "443"))
    estimate = tree.estimate(https_everywhere)
    print(f"traffic to port 443 (any src/dst): {estimate.value('packets'):,} packets "
          f"(exact node: {estimate.exact_node})\n")

    # 3. Merge and diff: the operators that make summaries composable ----------
    second_half = Flowtree(SCHEMA_4F, config)
    second_half.add_records(generator.packets(packet_count // 2))

    merged = tree.merged(second_half)
    delta = second_half.diff(tree)
    print(f"merged summary:   {merged.node_count():,} nodes, "
          f"{merged.total_counters().packets:,} packets")
    print(f"diff summary:     {delta.node_count():,} nodes "
          f"(positive counters = traffic that grew)")
    grew = [(key, value) for key, value in delta.top(3) if value > 0]
    print("fastest growing aggregates in the second window:")
    for key, value in grew:
        print(f"  {key.pretty()}  +{value:,} packets")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    main(count)
