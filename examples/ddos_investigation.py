#!/usr/bin/env python3
"""DDoS investigation: alerting on a traffic change, then drilling down.

A daemon summarizes traffic in ten-minute bins.  Midway through, a
volumetric attack towards one /24 begins.  The alert manager notices the
jump between consecutive bins (the diff operator at work), and the
investigation drills from "a destination /8 is hot" down to the victim /24
and the service port being abused — the exact exploration loop the paper's
introduction describes.

Usage::

    python examples/ddos_investigation.py [packet_count]
"""

from __future__ import annotations

import sys

from repro import FlowtreeConfig, FlowKey, SCHEMA_4F
from repro.analysis.drilldown import investigate, port_profile
from repro.analysis.report import render_table
from repro.distributed import AlertPolicy, Deployment
from repro.features.ipaddr import int_to_ipv4
from repro.traces import CaidaLikeTraceGenerator, DdosScenario, DdosTraceGenerator
from repro.traces.base import interleave_by_time


def main(packet_count: int = 100_000) -> None:
    scenario = DdosScenario(
        victim_subnet="203.0.113.0",
        attack_port=53,
        attacker_count=2_000,
        attack_fraction=0.45,
        start_offset=1.2,  # attack starts after the first bin
    )

    # The "priority:0,2,3,1" policy keeps the destination prefix specific the
    # longest, which orients the summary towards victim-side drill-down.
    deployment = Deployment(
        SCHEMA_4F,
        ("edge-router",),
        bin_width=1.0,
        daemon_config=FlowtreeConfig(max_nodes=15_000, policy="priority:0,2,3,1"),
        alert_policy=AlertPolicy(min_popularity=2_000, warning_change=1.0, critical_change=3.0),
    )

    # First bin: clean background.  Later bins: background + attack.
    background = CaidaLikeTraceGenerator(seed=11, flow_population=60_000)
    attack = DdosTraceGenerator(scenario=scenario, seed=12)
    deployment.attach_records(
        "edge-router",
        interleave_by_time([background.packets(packet_count // 3),
                            attack.packets(packet_count)]),
    )
    deployment.run()

    # --- 1. Alerts raised by the bin-over-bin diff --------------------------------
    alerts = deployment.alerts()
    print(f"{len(alerts)} alerts raised")
    for alert in alerts[:5]:
        print("  " + alert.describe())
    print()

    # --- 2. Investigate the hot destination /8 -------------------------------------
    merged = deployment.collector.merged()
    victim_slash8 = int_to_ipv4(scenario.victim_network & 0xFF000000)
    start = FlowKey.from_wire(SCHEMA_4F, ("*", f"{victim_slash8}/8", "*", "*"))
    report = investigate(merged, start, feature_index=1, step=8)
    print(report.describe())
    print()

    # --- 3. Which service is being abused? ------------------------------------------
    victim_key = FlowKey.from_wire(
        SCHEMA_4F, ("*", f"{int_to_ipv4(scenario.victim_network)}/24", "*", "*")
    )
    print("destination-port profile of the victim /24:")
    print(render_table(port_profile(merged, victim_key, port_feature_index=3)))


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    main(count)
